"""Span-tree aggregation and rendering for ``repro trace summarize``.

A raw trace has one line per span *instance*; a smoke suite emits the
same ``harness.certify`` span once per profile.  The summary
aggregates instances by *path* — the chain of span names from the
root — so repeated phases collapse into one node with a count, and
reports two times per node:

total
    Wall time summed over the node's instances (includes children).
self
    Total minus the wall time of the node's direct children — the
    time spent in the node's own code.  This is what the hot-span
    ranking sorts by: a parent that merely delegates has near-zero
    self time no matter how large its total.

Rendering is plain text (the CLI's output contract), deterministic
given the trace: children are ordered by first appearance, hot spans
by self time with path as tie-break.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.trace import SpanRecord, read_jsonl

__all__ = [
    "SpanNode",
    "aggregate_spans",
    "hot_spans",
    "render_tree",
    "summarize_trace",
]


@dataclass
class SpanNode:
    """All instances of one span path, aggregated."""

    name: str
    path: Tuple[str, ...]
    count: int = 0
    total_wall_s: float = 0.0
    total_cpu_s: float = 0.0
    mem_bytes: Optional[int] = None  # summed tracemalloc deltas, if traced
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def self_wall_s(self) -> float:
        """Wall time not accounted for by direct children."""
        return self.total_wall_s - sum(c.total_wall_s for c in self.children)

    def walk(self) -> List["SpanNode"]:
        """This node and every descendant, preorder."""
        out: List[SpanNode] = [self]
        for child in self.children:
            out.extend(child.walk())
        return out


def aggregate_spans(spans: Sequence[SpanRecord]) -> List[SpanNode]:
    """Fold span instances into a forest of per-path nodes.

    Roots (spans with no parent) come back in first-appearance order;
    an instance whose parent id is missing from the trace (a truncated
    file) is treated as a root rather than dropped.
    """
    by_id: Dict[int, SpanRecord] = {s.span_id: s for s in spans}

    def path_of(span: SpanRecord) -> Tuple[str, ...]:
        names: List[str] = []
        cur: Optional[SpanRecord] = span
        while cur is not None:
            names.append(cur.name)
            cur = (
                by_id.get(cur.parent_id)
                if cur.parent_id is not None else None
            )
        return tuple(reversed(names))

    nodes: Dict[Tuple[str, ...], SpanNode] = {}
    roots: List[SpanNode] = []
    # Entry order (span_id) gives first-appearance ordering regardless of
    # the completion-ordered file layout.
    for span in sorted(spans, key=lambda s: s.span_id):
        path = path_of(span)
        node = nodes.get(path)
        if node is None:
            node = SpanNode(name=span.name, path=path)
            nodes[path] = node
            parent = nodes.get(path[:-1]) if len(path) > 1 else None
            if parent is not None:
                parent.children.append(node)
            else:
                roots.append(node)
        node.count += 1
        node.total_wall_s += span.wall_s
        node.total_cpu_s += span.cpu_s
        if span.mem_bytes is not None:
            node.mem_bytes = (node.mem_bytes or 0) + span.mem_bytes
    return roots


def hot_spans(roots: Sequence[SpanNode], top: int = 10) -> List[SpanNode]:
    """The ``top`` nodes by self wall time (path breaks ties)."""
    every = [node for root in roots for node in root.walk()]
    every.sort(key=lambda n: (-n.self_wall_s, n.path))
    return every[:max(0, top)]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:7.2f}ms"


def _fmt_mem(mem_bytes: Optional[int]) -> str:
    if mem_bytes is None:
        return ""
    mib = mem_bytes / (1024 * 1024)
    return f"  mem {mib:+.2f}MiB"


def render_tree(roots: Sequence[SpanNode]) -> str:
    """The span forest as indented text, one node per line."""
    lines = [
        f"{'total':>9}  {'self':>9}  {'count':>5}  span",
        f"{'-----':>9}  {'----':>9}  {'-----':>5}  ----",
    ]

    def emit(node: SpanNode, depth: int) -> None:
        lines.append(
            f"{_fmt_seconds(node.total_wall_s)}  "
            f"{_fmt_seconds(node.self_wall_s)}  "
            f"{node.count:5d}  "
            f"{'  ' * depth}{node.name}{_fmt_mem(node.mem_bytes)}"
        )
        for child in node.children:
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)


def summarize_trace(path: str, top: int = 10) -> str:
    """Full text summary of a JSONL trace file: tree plus hot spans."""
    spans = read_jsonl(path)
    if not spans:
        return f"{path}: empty trace (0 spans)"
    roots = aggregate_spans(spans)
    parts = [
        f"{path}: {len(spans)} spans, {len(roots)} root(s)",
        "",
        render_tree(roots),
    ]
    hottest = hot_spans(roots, top=top)
    if hottest:
        parts += ["", f"top {len(hottest)} by self time:"]
        for rank, node in enumerate(hottest, start=1):
            parts.append(
                f"{rank:3d}. {_fmt_seconds(node.self_wall_s).strip():>9}"
                f"  {' > '.join(node.path)}  (x{node.count})"
            )
    return "\n".join(parts)
