"""Profile-driven workload & benchmark orchestration.

The harness layer turns the repository's constructions into a
reproducible perf record:

* :mod:`repro.harness.profiles` — the registry of named, seeded workload
  profiles (graph family × size tier × algorithm × parameters);
* :mod:`repro.harness.runner` — executes profiles, timing construction
  and certification separately and sampling peak memory;
* :mod:`repro.harness.queries` — seeded query mixes served through a
  :class:`~repro.oracle.DistanceOracle` (the schema-4 ``queries`` block);
* :mod:`repro.harness.loadgen` — closed/open-loop load generation
  against the :mod:`repro.serve` daemon (the schema-6 ``load`` block);
* :mod:`repro.harness.results` — schema-versioned JSON reports plus the
  regression/improvement comparison gate.

Entry point: ``python -m repro bench`` (see :mod:`repro.cli`).
"""

from repro.harness.profiles import (
    FAMILIES,
    HUGE_TIER,
    TIERS,
    Profile,
    all_profiles,
    congest_profiles,
    get_profile,
    huge_profiles,
    profile_names,
    register,
)
from repro.harness.loadgen import (
    ARRIVALS,
    MODES,
    LevelResult,
    build_profile_structure,
    drive_load,
    launch_daemon,
    request_schedule,
    run_closed_level,
    run_open_level,
    schedule_bytes,
    schedule_digest,
    stop_daemon,
)
from repro.harness.queries import (
    QUERY_MIXES,
    QueryMix,
    build_query_mix,
    run_query_workload,
)
from repro.harness.runner import (
    ALGORITHMS,
    CONGEST_ALGORITHMS,
    ENGINES,
    KERNEL_ALGORITHMS,
    QUERYABLE_ALGORITHMS,
    SPANNER_CERTIFIED_ALGORITHMS,
    STRUCTURE_EXTRACTORS,
    NetStats,
    ProfileRecord,
    queryable_profiles,
    run_huge_profile,
    run_profile,
    run_suite,
)
from repro.harness.results import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    Comparison,
    Delta,
    compare_reports,
    environment_metadata,
    load_report,
    make_report,
    report_records,
    write_report,
)

__all__ = [
    "FAMILIES",
    "HUGE_TIER",
    "TIERS",
    "Profile",
    "all_profiles",
    "congest_profiles",
    "get_profile",
    "huge_profiles",
    "profile_names",
    "register",
    "ARRIVALS",
    "MODES",
    "LevelResult",
    "build_profile_structure",
    "drive_load",
    "launch_daemon",
    "request_schedule",
    "run_closed_level",
    "run_open_level",
    "schedule_bytes",
    "schedule_digest",
    "stop_daemon",
    "QUERY_MIXES",
    "QueryMix",
    "build_query_mix",
    "run_query_workload",
    "ALGORITHMS",
    "CONGEST_ALGORITHMS",
    "ENGINES",
    "KERNEL_ALGORITHMS",
    "QUERYABLE_ALGORITHMS",
    "SPANNER_CERTIFIED_ALGORITHMS",
    "STRUCTURE_EXTRACTORS",
    "NetStats",
    "ProfileRecord",
    "queryable_profiles",
    "run_huge_profile",
    "run_profile",
    "run_suite",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "Comparison",
    "Delta",
    "compare_reports",
    "environment_metadata",
    "load_report",
    "make_report",
    "report_records",
    "write_report",
]
