"""Seeded query workloads: the serving-side half of a profile run.

A construction profile measures how fast a structure is *built*; a query
workload measures how fast it is *served*.  :class:`QueryMix` pins down
one seeded mix — how many pair queries, how skewed towards a hot set
(the repeat traffic the oracle's LRU cache exists for), how many
k-nearest calls — per size tier, and :func:`run_query_workload` turns a
constructed structure into the schema-v4 ``queries`` block: build time,
p50/p99 per-query latency, throughput, and the cache hit/miss split.

The mix is deterministic for a fixed seed (vertex choice, hot-set
membership and the hot/cold interleaving all come from one
``random.Random``), so cache hit counts are exactly reproducible and the
``--compare`` gate can hold them to the same 1% tolerance as CONGEST
round counts, while latencies gate with the usual wall-clock slack.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.graphs.weighted_graph import Vertex, WeightedGraph
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.oracle import DistanceOracle

#: quantities in the ``queries`` block whose values are seeded-deterministic
#: (everything else in the block is wall-clock); ``compare_reports`` gates
#: exactly these at the 1% rounds tolerance.
DETERMINISTIC_QUERY_QUANTITIES = ("cache_hits", "cache_misses")


@dataclass(frozen=True)
class QueryMix:
    """One seeded query mix (see module docstring).

    ``hot_fraction`` of the pair queries are drawn from a pool of
    ``hot_set`` fixed pairs (cache-friendly repeat traffic); the rest are
    fresh uniform pairs.  ``k_nearest`` queries ask for the ``k``
    closest vertices of random sources.
    """

    pairs: int
    hot_set: int
    hot_fraction: float
    k_nearest: int
    k: int
    landmarks: int
    strategy: str = "far"


#: tier -> the mix ``run_profile(queries=True)`` executes at that tier.
QUERY_MIXES: Dict[str, QueryMix] = {
    "smoke": QueryMix(pairs=400, hot_set=40, hot_fraction=0.5,
                      k_nearest=25, k=5, landmarks=4),
    "table1": QueryMix(pairs=2_000, hot_set=120, hot_fraction=0.5,
                       k_nearest=100, k=8, landmarks=8),
    "stress": QueryMix(pairs=10_000, hot_set=250, hot_fraction=0.6,
                       k_nearest=250, k=10, landmarks=16),
}


def build_query_mix(
    structure: WeightedGraph, mix: QueryMix, seed: int
) -> Tuple[List[Tuple[Vertex, Vertex]], List[Vertex]]:
    """The concrete seeded query stream for ``structure``.

    Returns ``(pair_queries, k_nearest_sources)``; both are functions of
    ``(structure's vertex order, mix, seed)`` only, so two runs of the
    same profile issue bit-identical traffic.
    """
    verts = list(structure.vertices())
    rng = random.Random(seed)
    if len(verts) < 2:
        return [], list(verts)[: mix.k_nearest]
    hot = [
        (rng.choice(verts), rng.choice(verts)) for _ in range(max(1, mix.hot_set))
    ]
    pairs: List[Tuple[Vertex, Vertex]] = []
    for _ in range(mix.pairs):
        if rng.random() < mix.hot_fraction:
            pairs.append(hot[rng.randrange(len(hot))])
        else:
            pairs.append((rng.choice(verts), rng.choice(verts)))
    sources = [rng.choice(verts) for _ in range(mix.k_nearest)]
    return pairs, sources


def run_query_workload(
    structure: WeightedGraph,
    mix: QueryMix,
    seed: int,
) -> Dict[str, object]:
    """Serve one seeded mix over ``structure``; returns the ``queries`` block.

    The oracle is built here (timed separately as ``build_seconds`` — the
    preprocess-once cost) and then serves the whole mix through
    :meth:`~repro.oracle.DistanceOracle.query` /
    :meth:`~repro.oracle.DistanceOracle.k_nearest`, with per-query
    latency sampled around each call.
    """
    with obs_trace.timed_span("queries.oracle_build") as t_build:
        oracle = DistanceOracle.build(
            structure, landmarks=mix.landmarks, strategy=mix.strategy, seed=seed
        )
    build_seconds = t_build.wall_s

    pairs, sources = build_query_mix(structure, mix, seed)
    latencies: List[float] = []
    clock = time.perf_counter
    with obs_trace.timed_span(
        "queries.serve", pairs=len(pairs), k_nearest=len(sources)
    ) as t_serve:
        served_t0 = clock()
        for u, v in pairs:
            t = clock()
            oracle.query(u, v)
            latencies.append(clock() - t)
        for v in sources:
            t = clock()
            oracle.k_nearest(v, mix.k)
            latencies.append(clock() - t)
        served_seconds = clock() - served_t0

    info = oracle.cache_info()
    # fold the oracle's per-instance metrics (cache counters, latency
    # histogram) into the process-wide registry now that serving is done
    obs_metrics.merge(oracle.metrics.snapshot())
    count = len(latencies)
    latencies.sort()

    def _pct(p: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(count - 1, int(p * count))] * 1000.0

    return {
        "count": count,
        "pair_queries": len(pairs),
        "k_nearest_queries": len(sources),
        "k": mix.k,
        "landmarks": len(oracle.landmark_indices),
        "strategy": mix.strategy,
        "build_seconds": build_seconds,
        "served_seconds": served_seconds,
        "p50_ms": _pct(0.50),
        "p99_ms": _pct(0.99),
        "qps": count / served_seconds if served_seconds > 0 else 0.0,
        "cache_hits": info["hits"],
        "cache_misses": info["misses"],
        "cache_hit_rate": info["hits"] / max(1, info["hits"] + info["misses"]),
    }
