"""Machine-readable benchmark reports and regression gating.

A report is a schema-versioned JSON document (``BENCH_<tag>.json``)
holding one :class:`~repro.harness.runner.ProfileRecord` per executed
profile plus environment metadata, so perf numbers live in artifacts
instead of commit messages.  :func:`compare_reports` diffs two reports
profile-by-profile and classifies each tracked quantity as improvement /
regression / within-tolerance; the comparison's ``ok`` flag is the gate
CI and ``python -m repro bench --compare`` use.

Gating rules (deliberately asymmetric per quantity):

* wall-clock construction time — relative tolerance (default ±50%),
  with an absolute floor below which jitter is ignored;
* peak memory — relative tolerance with a 1 MiB floor;
* charged rounds — deterministic given the profile seed, so any change
  beyond 1% is flagged;
* network traffic (messages / words / active-node-rounds, CONGEST
  profiles) — deterministic like rounds, same 1% gate; comparing a
  sparse run against a dense baseline shows the utilization win as an
  ``active_node_rounds`` improvement;
* query serving (``queries`` block, schema 4) — p50/p99 latency gate
  like wall-clock (relative tolerance over a jitter floor), throughput
  gates on its reciprocal (fewer queries per second is the regression),
  and cache hit/miss counts are seeded-deterministic so they gate at 1%
  like rounds;
* daemon load (``load`` block, schema 6) — per load level,
  p50/p99/p999 latency and achieved qps gate like the queries block,
  request counts are schedule-deterministic (seeded arrivals) so they
  gate at 1%, and the failure rate tolerates one absolute percentage
  point before any increase gates;
* quality — a profile whose certification flips from ok to violated is
  always a regression, regardless of tolerance.

A quantity only one report knows about — e.g. a schema-v1 baseline
compared against a current run that has ``network`` or ``queries``
blocks — is reported as ``metric absent`` for that record and never
gates: old baselines stay comparable forever instead of raising.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.harness.queries import DETERMINISTIC_QUERY_QUANTITIES
from repro.harness.runner import ProfileRecord

PathLike = Union[str, "Path"]  # noqa: F821 - keep the io.py convention

SCHEMA_NAME = "repro.harness.bench"
#: version 2 added the per-record ``network`` block (messages / words /
#: active_node_rounds); version 3 the ``certification`` block (mode /
#: sampled_edges / workers / pruning counters of the bounded-radius
#: stretch engine); version 4 the ``queries`` block (oracle serving
#: latency percentiles, throughput, cache hit/miss split); version 5
#: the ``observability`` block (per-record repro.obs counter/gauge
#: deltas + span count), the network block's lifetime ``rounds`` total,
#: and a nullable ``peak_memory_bytes`` (``--no-mem`` runs record
#: ``null``); version 6 the ``load`` block (per-level daemon load:
#: p50/p99/p999 latency, achieved qps, failure rate, request counts
#: from the seeded closed/open-loop generator in
#: :mod:`repro.harness.loadgen`).  Older reports still load, with those
#: blocks absent.
SCHEMA_VERSION = 6

#: seconds below which timing deltas are considered pure jitter
TIME_FLOOR_SECONDS = 0.05
#: bytes below which memory deltas are considered pure jitter
MEMORY_FLOOR_BYTES = 1 << 20
#: rounds are seeded-deterministic; allow only numerical slack
ROUNDS_TOLERANCE = 0.01
#: milliseconds below which query-latency deltas are considered jitter
QUERY_LATENCY_FLOOR_MS = 0.05
#: absolute failure-rate change below which load levels do not gate
LOAD_FAILURE_RATE_FLOOR = 0.01


def environment_metadata() -> Dict[str, str]:
    """Where the numbers were produced (stamped into every report)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "argv": " ".join(sys.argv),
    }


def make_report(
    records: List[ProfileRecord],
    suite: str,
    tag: Optional[str] = None,
) -> Dict[str, object]:
    """Assemble the schema-versioned report document."""
    return {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "tag": tag,
        "suite": suite,
        "created_unix": time.time(),
        "environment": environment_metadata(),
        "records": [r.to_dict() for r in records],
    }


def write_report(report: Dict[str, object], path: PathLike) -> None:
    """Write a report produced by :func:`make_report` as indented JSON."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_report(path: PathLike) -> Dict[str, object]:
    """Load and schema-check a report.

    Raises
    ------
    ValueError
        If the document is not a harness report or its schema version is
        newer than this code understands.
    """
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("schema") != SCHEMA_NAME:
        raise ValueError(f"{path}: not a {SCHEMA_NAME} report")
    version = data.get("schema_version")
    if not isinstance(version, int) or version < 1 or version > SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported schema version {version!r} "
            f"(this code reads <= {SCHEMA_VERSION})"
        )
    return data


def report_records(report: Dict[str, object]) -> List[ProfileRecord]:
    """The report's records as :class:`ProfileRecord` objects."""
    return [ProfileRecord.from_dict(r) for r in report["records"]]


@dataclass(frozen=True)
class Delta:
    """One tracked quantity of one profile, baseline vs current."""

    profile: str
    # "construction_seconds" | "peak_memory_bytes" | "rounds" | "messages"
    # | "words" | "active_node_rounds" | "query_p50_ms" | "query_p99_ms"
    # | "query_qps" | "query_cache_hits" | "query_cache_misses"
    # | "load_<level>_{p50_ms,p99_ms,p999_ms,qps,failure_rate,requests}"
    # | "quality"
    quantity: str
    baseline: Optional[float]
    current: Optional[float]
    status: str  # "improvement" | "regression" | "ok" | "absent"

    @property
    def ratio(self) -> float:
        """current / baseline (inf when the baseline is zero)."""
        if self.baseline is None or self.current is None:
            return float("nan")
        if self.baseline == 0:
            return float("inf") if self.current else 1.0
        return self.current / self.baseline

    def render(self) -> str:
        """One aligned text line for the CLI delta table."""
        if self.status == "absent":
            side = "baseline" if self.baseline is None else "current run"
            return (
                f" ? {self.profile:<24} {self.quantity:<22} "
                f"metric absent from the {side}"
            )
        marker = {"improvement": "+", "regression": "!", "ok": " "}[self.status]
        return (
            f" {marker} {self.profile:<24} {self.quantity:<22} "
            f"{self.baseline:>12.4g} -> {self.current:>12.4g} "
            f"(x{self.ratio:.2f}, {self.status})"
        )


@dataclass
class Comparison:
    """Outcome of :func:`compare_reports`."""

    deltas: List[Delta] = field(default_factory=list)
    missing_profiles: List[str] = field(default_factory=list)  # in baseline only
    new_profiles: List[str] = field(default_factory=list)  # in current only
    tolerance: float = 0.5

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def improvements(self) -> List[Delta]:
        return [d for d in self.deltas if d.status == "improvement"]

    @property
    def ok(self) -> bool:
        """The gate: True iff some profile matched and none regressed."""
        if not self.deltas and (self.missing_profiles or self.new_profiles):
            return False  # nothing compared at all — never a silent PASS
        return not self.regressions

    def render(self) -> str:
        """Multi-line delta table plus the gate verdict."""
        lines = [d.render() for d in self.deltas]
        if self.missing_profiles:
            lines.append("   profiles only in baseline: " + ", ".join(self.missing_profiles))
        if self.new_profiles:
            lines.append("   profiles only in current run: " + ", ".join(self.new_profiles))
        if self.ok:
            verdict = "PASS: no regressions beyond tolerance"
        elif not self.deltas:
            verdict = "FAIL: no profiles matched between the two reports"
        else:
            verdict = f"FAIL: {len(self.regressions)} regression(s) beyond tolerance"
        lines.append(verdict)
        return "\n".join(lines)


def _classify(baseline: float, current: float, tolerance: float, floor: float) -> str:
    if abs(current - baseline) <= floor:
        return "ok"  # absolute delta within the jitter floor
    if current > baseline * (1.0 + tolerance):
        return "regression"
    if current < baseline * (1.0 - tolerance):
        return "improvement"
    return "ok"


def compare_reports(
    baseline: Dict[str, object],
    current: Dict[str, object],
    tolerance: float = 0.5,
) -> Comparison:
    """Diff ``current`` against ``baseline`` (both report documents).

    Profiles are matched by (name, tier); unmatched profiles are listed
    and only gate when *nothing* matched.  ``tolerance`` applies to
    wall-clock and memory; rounds use :data:`ROUNDS_TOLERANCE` and
    quality flips always gate.

    Raises
    ------
    ValueError
        If the two reports were produced at different suites (a smoke
        baseline says nothing about a table1 run).
    """
    if baseline.get("suite") != current.get("suite"):
        raise ValueError(
            f"cannot compare reports from different suites: "
            f"baseline is {baseline.get('suite')!r}, current is {current.get('suite')!r}"
        )
    base = {(r.profile, r.tier): r for r in report_records(baseline)}
    curr = {(r.profile, r.tier): r for r in report_records(current)}
    comparison = Comparison(tolerance=tolerance)
    comparison.missing_profiles = sorted(p for p, _ in set(base) - set(curr))
    comparison.new_profiles = sorted(p for p, _ in set(curr) - set(base))

    for key in sorted(set(base) & set(curr)):
        b, c = base[key], curr[key]
        name = b.profile

        def _block_delta(
            quantity: str,
            bval: Optional[float],
            cval: Optional[float],
            rel: float,
            floor: float,
            invert: bool = False,
        ) -> None:
            """Delta for a quantity either side may lack ("metric absent").

            ``invert=True`` is for more-is-better quantities (throughput):
            classification runs on the reciprocals so a drop gates as the
            regression it is.
            """
            if bval is None and cval is None:
                return
            if bval is None or cval is None:
                comparison.deltas.append(Delta(
                    name, quantity,
                    None if bval is None else float(bval),
                    None if cval is None else float(cval),
                    "absent",
                ))
                return
            bval, cval = float(bval), float(cval)
            if invert:
                binv = 1.0 / bval if bval else float("inf")
                cinv = 1.0 / cval if cval else float("inf")
                status = _classify(binv, cinv, rel, floor)
            else:
                status = _classify(bval, cval, rel, floor)
            comparison.deltas.append(Delta(name, quantity, bval, cval, status))

        comparison.deltas.append(Delta(
            name, "construction_seconds",
            b.construction_seconds, c.construction_seconds,
            _classify(b.construction_seconds, c.construction_seconds,
                      tolerance, TIME_FLOOR_SECONDS),
        ))
        # nullable since schema 5 (--no-mem records null): either side
        # missing reports "metric absent" instead of gating
        _block_delta(
            "peak_memory_bytes", b.peak_memory_bytes, c.peak_memory_bytes,
            tolerance, float(MEMORY_FLOOR_BYTES),
        )
        if b.rounds is not None and c.rounds is not None:
            comparison.deltas.append(Delta(
                name, "rounds", float(b.rounds), float(c.rounds),
                _classify(float(b.rounds), float(c.rounds), ROUNDS_TOLERANCE, 0.0),
            ))
        # network traffic (CONGEST profiles): messages and words are
        # seeded-deterministic and engine-independent, so they gate like
        # rounds; active_node_rounds is the engine's utilization — also
        # deterministic for a fixed engine, and exactly what a
        # sparse-vs-dense comparison is meant to surface.
        for quantity, bval, cval in (
            ("messages", b.messages, c.messages),
            ("words", b.words, c.words),
            ("active_node_rounds", b.active_node_rounds, c.active_node_rounds),
            ("net_rounds", b.net_rounds, c.net_rounds),
        ):
            _block_delta(quantity, bval, cval, ROUNDS_TOLERANCE, 0.0)
        # query serving (schema-4 ``queries`` block): latencies are
        # wall-clock (tolerance + per-query jitter floor), throughput
        # inverts with no floor (qps averages the whole mix, so timer
        # noise is already ~1/count and a floor would mask real
        # regressions on fast profiles), and the cache split is
        # seeded-deterministic like rounds.
        bq = b.queries or {}
        cq = c.queries or {}
        if b.queries is not None or c.queries is not None:
            query_quantities = [
                ("p50_ms", tolerance, QUERY_LATENCY_FLOOR_MS, False),
                ("p99_ms", tolerance, QUERY_LATENCY_FLOOR_MS, False),
                ("qps", tolerance, 0.0, True),
            ] + [
                (q, ROUNDS_TOLERANCE, 0.0, False)
                for q in DETERMINISTIC_QUERY_QUANTITIES
            ]
            for quantity, rel, floor, invert in query_quantities:
                _block_delta(
                    f"query_{quantity}", bq.get(quantity), cq.get(quantity),
                    rel, floor, invert=invert,
                )
        # daemon load (schema-6 ``load`` block): levels match by key
        # (``c4`` / ``r100``); latencies and qps gate like the queries
        # block (p999 included — tail latency is the point of the open
        # loop), request counts come from seeded schedules and gate
        # like rounds, and the failure rate gates on any increase past
        # one absolute percentage point.
        bl = b.load or {}
        cl = c.load or {}
        if b.load is not None or c.load is not None:
            blevels = {str(lv.get("key")): lv for lv in bl.get("levels", [])}
            clevels = {str(lv.get("key")): lv for lv in cl.get("levels", [])}
            for level_key in sorted(set(blevels) | set(clevels)):
                blv = blevels.get(level_key, {})
                clv = clevels.get(level_key, {})
                for quantity, rel, floor, invert in (
                    ("p50_ms", tolerance, QUERY_LATENCY_FLOOR_MS, False),
                    ("p99_ms", tolerance, QUERY_LATENCY_FLOOR_MS, False),
                    ("p999_ms", tolerance, QUERY_LATENCY_FLOOR_MS, False),
                    ("qps", tolerance, 0.0, True),
                    ("failure_rate", 0.0, LOAD_FAILURE_RATE_FLOOR, False),
                    ("requests", ROUNDS_TOLERANCE, 0.0, False),
                ):
                    _block_delta(
                        f"load_{level_key}_{quantity}",
                        blv.get(quantity), clv.get(quantity),
                        rel, floor, invert=invert,
                    )
        quality_status = "ok"
        if b.ok and not c.ok:
            quality_status = "regression"
        elif not b.ok and c.ok:
            quality_status = "improvement"
        comparison.deltas.append(Delta(
            name, "quality", float(b.ok), float(c.ok), quality_status,
        ))
    return comparison
