"""Named, seeded workload profiles — the single source of scenario truth.

A :class:`Profile` pins down one benchmarkable scenario: a graph family,
per-tier generator parameters, an algorithm, its parameters, and a seed.
Everything that runs workloads — ``python -m repro bench``, the
``benchmarks/bench_*.py`` tables, CI smoke runs — resolves scenarios
through this registry, so a workload is defined in exactly one place and
every consumer agrees on what, say, ``spanner-er`` means.

Three size tiers are mandatory for every profile:

``smoke``
    Seconds-per-profile sizes for CI and the test-suite.
``table1``
    The sizes the Table-1 benchmark tables historically used.
``stress``
    The largest sizes the pure-Python constructions handle in minutes.

The built-ins span every construction in the repository (§4 SLT, §5
light spanner, §6 nets, §7 doubling spanner, §8 estimation, the
Baswana–Sen / Elkin–Neiman / greedy spanner building blocks, Borůvka
MST, and the CONGEST simulator's BFS fan-out) across nine graph
families.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.graphs import (
    WeightedGraph,
    caterpillar_graph,
    das_sarma_hard_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    power_law_graph,
    random_geometric_graph,
    ring_chords_graph,
    ring_of_cliques,
    star_graph,
)

#: The mandatory size tiers, smallest first.  A profile may define extra
#: tiers beyond these; ``"huge"`` (10^6–10^7 nodes, served by the packed
#: mmap format via :func:`repro.harness.runner.run_huge_profile`) is the
#: convention for sizes only the array kernels can touch.
TIERS: Tuple[str, ...] = ("smoke", "table1", "stress")

#: the optional out-of-band tier name the huge-scale runner looks for.
HUGE_TIER = "huge"


def _seedless(builder: Callable[..., WeightedGraph]) -> Callable[..., WeightedGraph]:
    """Adapt a deterministic generator to the uniform ``seed=`` calling shape."""

    def build(seed: Optional[int] = None, **kwargs: Any) -> WeightedGraph:
        return builder(**kwargs)

    return build


def _lower_bound_graph(seed: Optional[int] = None, **kwargs: Any) -> WeightedGraph:
    graph, _mst_weight = das_sarma_hard_graph(seed=seed, **kwargs)
    return graph


#: family name -> generator taking ``seed=`` plus family-specific kwargs.
FAMILIES: Dict[str, Callable[..., WeightedGraph]] = {
    "er": erdos_renyi_graph,
    "grid": grid_graph,
    "geometric": random_geometric_graph,
    "power-law": power_law_graph,
    "hypercube": hypercube_graph,
    "lower-bound": _lower_bound_graph,
    "star": _seedless(star_graph),
    "caterpillar": _seedless(caterpillar_graph),
    "ring-of-cliques": _seedless(ring_of_cliques),
    "ring-chords": ring_chords_graph,
}


@dataclass(frozen=True)
class Profile:
    """One named scenario: graph family × per-tier size × algorithm × params.

    Attributes
    ----------
    name:
        Registry key (kebab-case, unique).
    section:
        The paper anchor the scenario exercises (e.g. ``"§5"``).
    family:
        A key of :data:`FAMILIES`.
    algorithm:
        A key of :data:`repro.harness.runner.ALGORITHMS`.
    params:
        Algorithm parameters shared by all tiers.
    tiers:
        ``tier -> generator kwargs`` for every tier in :data:`TIERS`.
    tier_params:
        Optional per-tier overrides merged over ``params``.
    seed:
        Seed for both graph generation and the algorithm's RNG.
    certifiable:
        Whether certification is tractable even at the stress tier.
        True for every built-in since the bounded-radius batched
        certification engine (:mod:`repro.analysis.certify`) replaced
        the full-SSSP-per-vertex stretch check; a future profile whose
        certification cannot ride that engine sets this False and the
        runner then skips certification at stress sizes only.
    """

    name: str
    description: str
    section: str
    family: str
    algorithm: str
    params: Mapping[str, object]
    tiers: Mapping[str, Mapping[str, object]]
    seed: int = 0
    tier_params: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    certifiable: bool = True

    def graph_params(self, tier: str) -> Dict[str, object]:
        """Generator kwargs for ``tier`` (raises KeyError on unknown tier)."""
        if tier not in self.tiers:
            raise KeyError(f"profile {self.name!r} has no tier {tier!r}")
        return dict(self.tiers[tier])

    def algo_params(self, tier: str) -> Dict[str, object]:
        """Algorithm params for ``tier`` (base params + tier overrides)."""
        merged = dict(self.params)
        merged.update(self.tier_params.get(tier, {}))
        return merged

    def build_graph(self, tier: str, **overrides: Any) -> WeightedGraph:
        """Generate the tier's workload graph, deterministically.

        ``overrides`` patch individual generator kwargs (including
        ``seed``) — benchmark sweeps use this to vary one axis while the
        scenario definition stays here.
        """
        kwargs = self.graph_params(tier)
        kwargs.update(overrides)
        seed = kwargs.pop("seed", self.seed)
        return FAMILIES[self.family](seed=seed, **kwargs)


_REGISTRY: Dict[str, Profile] = {}


def register(profile: Profile) -> Profile:
    """Add ``profile`` to the registry (rejects duplicates / bad refs)."""
    if profile.name in _REGISTRY:
        raise ValueError(f"duplicate profile name {profile.name!r}")
    if profile.family not in FAMILIES:
        raise ValueError(f"profile {profile.name!r}: unknown family {profile.family!r}")
    missing = [t for t in TIERS if t not in profile.tiers]
    if missing:
        raise ValueError(f"profile {profile.name!r}: missing tiers {missing}")
    _REGISTRY[profile.name] = profile
    return profile


def get_profile(name: str) -> Profile:
    """Look up a profile by name (raises KeyError with suggestions)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown profile {name!r}; known profiles: {known}") from None


def profile_names() -> List[str]:
    """All registered profile names, sorted."""
    return sorted(_REGISTRY)


def all_profiles() -> List[Profile]:
    """All registered profiles, sorted by name."""
    return [_REGISTRY[name] for name in profile_names()]


def congest_profiles() -> List[Profile]:
    """The CONGEST-layer profiles (``python -m repro bench --suite congest``).

    Selected by algorithm: everything that executes message-level on a
    :class:`~repro.congest.simulator.SyncNetwork`, so a profile added for
    a new node program is picked up automatically.
    """
    return [p for p in all_profiles() if p.algorithm.startswith("congest-")]


def huge_profiles() -> List[Profile]:
    """Profiles defining the optional huge tier (``--suite huge``)."""
    return [p for p in all_profiles() if HUGE_TIER in p.tiers]


# ---------------------------------------------------------------------------
# Built-in profiles
# ---------------------------------------------------------------------------

register(Profile(
    name="slt-er",
    description="§4 shallow-light tree on an ER graph, lightness budget 5",
    section="§4",
    family="er",
    algorithm="slt",
    params={"alpha": 5.0},
    seed=7,
    tiers={
        "smoke": {"n": 40, "p": 0.2},
        "table1": {"n": 80, "p": 0.2},
        "stress": {"n": 240, "p": 0.05},
    },
))

register(Profile(
    name="slt-star-rim",
    description="§4 SLT on the star+rim family (MST root-stretch is terrible)",
    section="§4",
    family="star",
    algorithm="slt",
    params={"alpha": 2.0},
    tiers={
        "smoke": {"n": 24, "spoke_weight": 10.0, "rim_weight": 1.0},
        "table1": {"n": 40, "spoke_weight": 10.0, "rim_weight": 1.0},
        "stress": {"n": 160, "spoke_weight": 10.0, "rim_weight": 1.0},
    },
))

register(Profile(
    name="slt-caterpillar",
    description="§4 SLT on a heavy-spine caterpillar (long MST root paths)",
    section="§4",
    family="caterpillar",
    algorithm="slt",
    params={"alpha": 3.0},
    tiers={
        "smoke": {"spine": 10, "legs_per_vertex": 2},
        "table1": {"spine": 30, "legs_per_vertex": 3},
        "stress": {"spine": 80, "legs_per_vertex": 4},
    },
))

register(Profile(
    name="spanner-er",
    description="§5 light spanner (k=2) on a dense ER graph",
    section="§5",
    family="er",
    algorithm="light-spanner",
    params={"k": 2, "eps": 0.25},
    seed=100,
    tiers={
        "smoke": {"n": 40, "p": 0.3},
        "table1": {"n": 80, "p": 0.8},
        "stress": {"n": 200, "p": 0.15},
    },
))

register(Profile(
    name="spanner-geometric",
    description="§5 light spanner (k=2) on a doubling (geometric) workload",
    section="§5",
    family="geometric",
    algorithm="light-spanner",
    params={"k": 2, "eps": 0.25},
    seed=5,
    tiers={
        "smoke": {"n": 30},
        "table1": {"n": 60},
        "stress": {"n": 150},
    },
))

register(Profile(
    name="spanner-power-law",
    description="§5 light spanner (k=3) on a preferential-attachment graph",
    section="§5",
    family="power-law",
    algorithm="light-spanner",
    params={"k": 3, "eps": 0.25},
    seed=12,
    tiers={
        "smoke": {"n": 40, "attach": 2},
        "table1": {"n": 90, "attach": 3},
        "stress": {"n": 220, "attach": 3},
    },
))

register(Profile(
    name="net-er",
    description="§6 (α, β)-net at Δ=25 on an ER graph",
    section="§6",
    family="er",
    algorithm="net",
    params={"scale": 25.0, "delta": 0.5},
    seed=10,
    tiers={
        "smoke": {"n": 36, "p": 0.2},
        "table1": {"n": 70, "p": 0.2},
        "stress": {"n": 200, "p": 0.08},
    },
))

register(Profile(
    name="net-geometric",
    description="§6 (α, β)-net at Δ=40 on a geometric workload",
    section="§6",
    family="geometric",
    algorithm="net",
    params={"scale": 40.0, "delta": 0.5},
    seed=3,
    tiers={
        "smoke": {"n": 40},
        "table1": {"n": 100},
        "stress": {"n": 220},
    },
))

register(Profile(
    name="doubling-geometric",
    description="§7 doubling spanner (ε=0.08) on a ddim≈2 geometric workload",
    section="§7",
    family="geometric",
    algorithm="doubling-spanner",
    params={"eps": 0.08, "net_method": "greedy"},
    seed=21,
    tiers={
        "smoke": {"n": 24},
        "table1": {"n": 40},
        "stress": {"n": 90},
    },
))

register(Profile(
    name="doubling-grid",
    description="§7 doubling spanner (ε=0.1) on a jittered grid",
    section="§7",
    family="grid",
    algorithm="doubling-spanner",
    params={"eps": 0.1, "net_method": "greedy"},
    seed=11,
    tiers={
        "smoke": {"rows": 5, "cols": 5, "jitter": 0.3},
        "table1": {"rows": 8, "cols": 8, "jitter": 0.3},
        "stress": {"rows": 14, "cols": 14, "jitter": 0.3},
    },
))

register(Profile(
    name="estimate-lower-bound",
    description="§8 MST-weight estimation on the [DSHK+12] hard family",
    section="§8",
    family="lower-bound",
    algorithm="estimate",
    params={"net_method": "greedy"},
    seed=1,
    tiers={
        "smoke": {"n": 60, "planted_weight": 100.0},
        "table1": {"n": 120, "planted_weight": 100.0},
        "stress": {"n": 300, "planted_weight": 10_000.0},
    },
))

register(Profile(
    name="baswana-sen-er",
    description="[BS07] (2k−1)-spanner building block (k=3) on an ER graph",
    section="§5 (E′ bucket)",
    family="er",
    algorithm="baswana-sen",
    params={"k": 3},
    seed=41,
    tiers={
        "smoke": {"n": 40, "p": 0.25},
        "table1": {"n": 60, "p": 0.3},
        "stress": {"n": 400, "p": 0.05},
    },
))

register(Profile(
    name="elkin-neiman-hypercube",
    description="[EN17b] unweighted spanner (k=3) on a hypercube",
    section="§5 (case-1 rounds)",
    family="hypercube",
    algorithm="elkin-neiman",
    params={"k": 3},
    seed=2,
    tiers={
        "smoke": {"dim": 5},
        "table1": {"dim": 7},
        "stress": {"dim": 9},
    },
))

register(Profile(
    name="greedy-spanner-er",
    description="[ADD+93] greedy 3-spanner baseline on an ER graph",
    section="baseline",
    family="er",
    algorithm="greedy-spanner",
    params={"k": 2},
    seed=13,
    tiers={
        "smoke": {"n": 40, "p": 0.3},
        "table1": {"n": 80, "p": 0.3},
        "stress": {"n": 160, "p": 0.15},
    },
))

register(Profile(
    name="mst-ring-of-cliques",
    description="Borůvka MST where lightness and sparsity pull apart",
    section="§3 substrate",
    family="ring-of-cliques",
    algorithm="mst",
    params={},
    tiers={
        "smoke": {"num_cliques": 4, "clique_size": 5},
        "table1": {"num_cliques": 8, "clique_size": 8},
        "stress": {"num_cliques": 16, "clique_size": 16},
    },
))

register(Profile(
    name="kernel-sssp-ring",
    description="batched SSSP + fixed-point residual certification on the "
                "ring-chords family (the repro.kernels showcase; its huge "
                "tier runs from the packed mmap format)",
    section="substrate",
    family="ring-chords",
    algorithm="kernel-sssp",
    params={"kernel": "python", "sources": 4},
    seed=0,
    tiers={
        "smoke": {"n": 400, "chords": 3},
        "table1": {"n": 5_000, "chords": 4},
        "stress": {"n": 60_000, "chords": 5},
        HUGE_TIER: {"n": 1_000_000, "chords": 6},
    },
    tier_params={
        "table1": {"sources": 6},
        "stress": {"sources": 8},
        HUGE_TIER: {"sources": 8},
    },
))

register(Profile(
    name="congest-bfs-grid",
    description="CONGEST simulator fan-out: distributed BFS tree on a grid",
    section="§2 model",
    family="grid",
    algorithm="congest-bfs",
    params={},
    tiers={
        "smoke": {"rows": 6, "cols": 6},
        "table1": {"rows": 10, "cols": 10},
        "stress": {"rows": 20, "cols": 20},
    },
))

register(Profile(
    name="congest-broadcast",
    description="Lemma-1 pipelined broadcast over a BFS tree on a deep grid "
                "(few messages, many rounds — the sparse engine's showcase)",
    section="§2 Lemma 1",
    family="grid",
    algorithm="congest-broadcast",
    params={"messages": 4},
    seed=17,
    tiers={
        "smoke": {"rows": 6, "cols": 6},
        "table1": {"rows": 16, "cols": 16},
        "stress": {"rows": 60, "cols": 60},
    },
    tier_params={
        "table1": {"messages": 8},
        "stress": {"messages": 12},
    },
))

register(Profile(
    name="congest-convergecast",
    description="Lemma-1 pipelined convergecast on a long caterpillar "
                "(activity hugs the spine path to the root)",
    section="§2 Lemma 1",
    family="caterpillar",
    algorithm="congest-convergecast",
    params={"messages": 6},
    seed=23,
    tiers={
        "smoke": {"spine": 12, "legs_per_vertex": 2},
        "table1": {"spine": 60, "legs_per_vertex": 3},
        "stress": {"spine": 300, "legs_per_vertex": 4},
    },
    tier_params={
        "table1": {"messages": 16},
        "stress": {"messages": 32},
    },
))

register(Profile(
    name="congest-interval-scan",
    description="§4.1 break-point interval scan: ~√n parallel tokens walk "
                "the MST Euler tour (only token holders are ever active)",
    section="§4.1",
    family="geometric",
    algorithm="congest-interval-scan",
    params={"eps": 0.5, "eps_spt": 0.5},
    seed=9,
    tiers={
        "smoke": {"n": 30},
        "table1": {"n": 120},
        "stress": {"n": 400},
    },
))

register(Profile(
    name="congest-cluster-round",
    description="§5 case-1 cluster-graph [EN17b] rounds at message level "
                "(convergecast + broadcast phases over the BFS tree)",
    section="§5 case 1",
    family="er",
    algorithm="congest-cluster-round",
    params={"k": 2, "eps": 0.25},
    seed=31,
    tiers={
        "smoke": {"n": 25, "p": 0.25},
        "table1": {"n": 60, "p": 0.15},
        "stress": {"n": 140, "p": 0.08},
    },
))
