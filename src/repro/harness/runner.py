"""Profile execution: build the workload, run the algorithm, certify.

:func:`run_profile` turns one (:class:`~repro.harness.profiles.Profile`,
tier) pair into a :class:`ProfileRecord` — the machine-readable unit the
JSON reports are made of.  Construction and certification are
wall-clock-timed separately (certification is often the more expensive
half at paper sizes and must not pollute the construction trend), peak
memory is sampled with :mod:`tracemalloc` around the construction only,
round counts come from each construction's :class:`RoundLedger`, and
quality metrics reuse :class:`repro.analysis.report.QualityReport` so
the bound-certification logic stays in one place.
"""

from __future__ import annotations

import math
import random
import time
import tracemalloc
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.report import MetricRow, QualityReport, net_report, slt_report, spanner_report
from repro.analysis.validation import verify_spanning_tree
from repro.congest import (
    RoundLedger,
    SyncNetwork,
    broadcast_messages,
    build_bfs_tree,
    convergecast_messages,
)
from repro.core import (
    build_net,
    doubling_spanner,
    estimate_mst_weight_via_nets,
    light_spanner,
    shallow_light_tree,
)
from repro.core.breakpoint_scan import run_interval_scan
from repro.core.cluster_simulation import simulate_case1_bucket
from repro.core.light_spanner import _case1_clusters
from repro.core.slt import _select_break_points
from repro.graphs import WeightedGraph
from repro.graphs.weighted_graph import Vertex
from repro.harness.profiles import HUGE_TIER, Profile, all_profiles
from repro.harness.queries import QUERY_MIXES, run_query_workload
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.mst import boruvka_mst, kruskal_mst
from repro.spanners import baswana_sen_spanner, elkin_neiman_spanner, greedy_spanner
from repro.spt import approx_spt
from repro.traversal import compute_euler_tour

#: engine names ``run_profile(engine=...)`` accepts for CONGEST profiles.
ENGINES = ("sparse", "dense")

#: the per-tier algorithm parameters run_profile threads through build/certify.
Params = Dict[str, Any]


def _root(graph: WeightedGraph) -> Vertex:
    return min(graph.vertices(), key=repr)


# Each algorithm entry is (build, certify):
#   build(graph, params, rng)    -> (artifact, rounds or None)
#   certify(graph, artifact, params) -> QualityReport
def _build_slt(
    graph: WeightedGraph, params: Params, rng: random.Random
) -> Tuple[Any, Optional[int]]:
    res = shallow_light_tree(graph, _root(graph), params["alpha"])
    return res, res.rounds


def _certify_slt(graph: WeightedGraph, res: Any, params: Params) -> QualityReport:
    return slt_report(
        graph, res.tree, res.root,
        stretch_bound=res.stretch_bound,
        lightness_bound=res.lightness_bound,
        rounds=res.rounds,
    )


def _build_light_spanner(
    graph: WeightedGraph, params: Params, rng: random.Random
) -> Tuple[Any, Optional[int]]:
    res = light_spanner(graph, params["k"], params["eps"], rng)
    return res, res.rounds


def _spanner_cert_kwargs(params: Params) -> Dict[str, Any]:
    """Certification-engine knobs run_profile injects into ``params``."""
    return {
        "certify_workers": params.get("certify_workers", 1),
        "certify_sample": params.get("certify_sample"),
        "certify_kernel": params.get("certify_kernel", "python"),
    }


def _certify_light_spanner(graph: WeightedGraph, res: Any, params: Params) -> QualityReport:
    return spanner_report(
        graph, res.spanner, stretch_bound=res.stretch_bound, rounds=res.rounds,
        **_spanner_cert_kwargs(params),
    )


def _build_net(
    graph: WeightedGraph, params: Params, rng: random.Random
) -> Tuple[Any, Optional[int]]:
    res = build_net(graph, params["scale"], params["delta"], rng)
    return res, res.rounds


def _certify_net(graph: WeightedGraph, res: Any, params: Params) -> QualityReport:
    return net_report(graph, res.points, res.alpha, res.beta, rounds=res.rounds)


def _build_doubling(
    graph: WeightedGraph, params: Params, rng: random.Random
) -> Tuple[Any, Optional[int]]:
    res = doubling_spanner(
        graph, params["eps"], rng, net_method=params.get("net_method", "greedy")
    )
    return res, res.rounds


def _certify_doubling(graph: WeightedGraph, res: Any, params: Params) -> QualityReport:
    # per-edge stretch is bounded by the pairwise guarantee 1 + 30ε
    return spanner_report(
        graph, res.spanner, stretch_bound=res.stretch_bound, rounds=res.rounds,
        **_spanner_cert_kwargs(params),
    )


def _build_estimate(
    graph: WeightedGraph, params: Params, rng: random.Random
) -> Tuple[Any, Optional[int]]:
    est = estimate_mst_weight_via_nets(
        graph, net_method=params.get("net_method", "greedy"), rng=rng
    )
    return est, est.ledger.total


def _certify_estimate(graph: WeightedGraph, est: Any, params: Params) -> QualityReport:
    # Theorem 7 sandwich: 1 <= Ψ/L <= O(α log n); both sides as upper bounds
    upper = 16.0 * est.alpha * math.log2(max(graph.n, 2))
    ratio = est.approximation_ratio
    rows = [
        MetricRow("psi/L", ratio, upper),
        MetricRow("L/psi", 1.0 / ratio if ratio > 0 else float("inf"), 1.0),
        MetricRow("scales", float(len(est.net_sizes))),
    ]
    return QualityReport(title="mst-weight estimate", rows=rows)


def _build_baswana_sen(
    graph: WeightedGraph, params: Params, rng: random.Random
) -> Tuple[Any, Optional[int]]:
    ledger = RoundLedger()
    spanner = baswana_sen_spanner(graph, params["k"], rng, ledger)
    return (spanner, ledger), ledger.total


def _certify_baswana_sen(graph: WeightedGraph, artifact: Any, params: Params) -> QualityReport:
    spanner, ledger = artifact
    bound = 2 * params["k"] - 1
    return spanner_report(
        graph, spanner, stretch_bound=bound, rounds=ledger.total,
        **_spanner_cert_kwargs(params),
    )


def _build_elkin_neiman(
    graph: WeightedGraph, params: Params, rng: random.Random
) -> Tuple[Any, Optional[int]]:
    adjacency = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    run = elkin_neiman_spanner(adjacency, params["k"], rng)
    spanner = WeightedGraph(graph.vertices())
    for edge in run.edges:
        u, v = tuple(edge)
        spanner.add_edge(u, v, graph.weight(u, v))
    return (run, spanner), run.rounds


def _certify_elkin_neiman(graph: WeightedGraph, artifact: Any, params: Params) -> QualityReport:
    run, spanner = artifact
    bound = 2 * params["k"] - 1
    return spanner_report(
        graph, spanner, stretch_bound=bound, rounds=run.rounds,
        **_spanner_cert_kwargs(params),
    )


def _build_greedy_spanner(
    graph: WeightedGraph, params: Params, rng: random.Random
) -> Tuple[Any, Optional[int]]:
    return greedy_spanner(graph, 2 * params["k"] - 1), None


def _certify_greedy_spanner(graph: WeightedGraph, spanner: Any, params: Params) -> QualityReport:
    return spanner_report(
        graph, spanner, stretch_bound=2 * params["k"] - 1,
        **_spanner_cert_kwargs(params),
    )


def _kernel_sources(n: int, count: int) -> List[int]:
    """``count`` evenly spread dense source indices (deterministic)."""
    count = max(1, min(count, n))
    return [(k * n) // count for k in range(count)]


def _build_kernel_sssp(
    graph: WeightedGraph, params: Params, rng: random.Random
) -> Tuple[Any, Optional[int]]:
    from repro.kernels import sssp_matrix

    csr = graph.freeze()
    sources = _kernel_sources(csr.n, int(params.get("sources", 4)))
    matrix = sssp_matrix(
        csr.indptr, csr.indices, csr.weights, sources,
        kernel=str(params.get("kernel", "python")),
    )
    return (csr, sources, matrix), None


def _certify_kernel_sssp(
    graph: WeightedGraph, artifact: Any, params: Params
) -> QualityReport:
    # fixed-point certificate: residual 0 + no finite-tail/inf-head arcs
    # means every relaxation-built row is exact (see repro.kernels.pykern)
    from repro.kernels import residual

    csr, sources, matrix = artifact
    kern = str(params.get("kernel", "python"))
    worst = 0.0
    unsettled = 0
    for row in matrix:
        w, u = residual(csr.indptr, csr.indices, csr.weights, row, kernel=kern)
        worst = max(worst, w)
        unsettled += u
    rows = [
        MetricRow("residual", worst, 1e-6),
        MetricRow("unsettled-arcs", float(unsettled), 0.0),
        MetricRow("sources", float(len(sources))),
    ]
    return QualityReport(title="kernel sssp", rows=rows)


def _build_mst(
    graph: WeightedGraph, params: Params, rng: random.Random
) -> Tuple[Any, Optional[int]]:
    res = boruvka_mst(graph)
    return res, res.rounds


def _certify_mst(graph: WeightedGraph, res: Any, params: Params) -> QualityReport:
    verify_spanning_tree(graph, res.tree)
    optimal = kruskal_mst(graph).total_weight()
    ratio = res.tree.total_weight() / optimal if optimal > 0 else 1.0
    rows = [
        MetricRow("weight/optimal", ratio, 1.0),
        MetricRow("phases", float(res.phases), float(math.ceil(math.log2(max(graph.n, 2))))),
        MetricRow("rounds", float(res.rounds)),
    ]
    return QualityReport(title="boruvka mst", rows=rows)


@dataclass(frozen=True)
class NetStats:
    """Measured traffic of a CONGEST profile run (one or more phases).

    Each field mirrors a lifetime ``total_*`` counter of the
    :class:`SyncNetwork` — NOT the per-run counters — so a multi-phase
    build (BFS tree + broadcast on one network) reports aggregate
    traffic even though :meth:`SyncNetwork.reset` zeroed the per-run
    counters between phases.  ``active_node_rounds`` counts ``step``
    invocations — the sparse engine's utilization measure (the dense
    engine's value is always ``n × step-rounds``).
    """

    rounds: int
    messages: int
    words: int
    active_node_rounds: int

    @classmethod
    def of(cls, net: SyncNetwork) -> "NetStats":
        """Snapshot a network's lifetime ``total_*`` counters."""
        return cls(
            rounds=net.total_rounds,
            messages=net.total_messages_sent,
            words=net.total_words_sent,
            active_node_rounds=net.total_active_node_rounds,
        )


def _congest_network(
    graph: WeightedGraph, params: Params, network: Optional[SyncNetwork]
) -> SyncNetwork:
    """The network a CONGEST build runs on; honours ``params['engine']``."""
    if network is not None:
        return network
    return SyncNetwork(graph, dense=params.get("engine") == "dense")


def _seeded_payloads(
    graph: WeightedGraph, params: Params, rng: random.Random
) -> Dict[Vertex, List[int]]:
    """Deterministically place one 1-word payload at ``messages`` vertices."""
    verts = sorted(graph.vertices(), key=repr)
    count = min(int(params["messages"]), len(verts))
    return {v: [i] for i, v in enumerate(rng.sample(verts, count))}


def _build_congest_bfs(
    graph: WeightedGraph,
    params: Params,
    rng: random.Random,
    network: Optional[SyncNetwork] = None,
) -> Tuple[Any, int, NetStats]:
    net = _congest_network(graph, params, network)
    tree = build_bfs_tree(graph, _root(graph), network=net)
    return tree, tree.rounds, NetStats.of(net)


def _certify_congest_bfs(graph: WeightedGraph, tree: Any, params: Params) -> QualityReport:
    depth = max(tree.depth.values())
    rows = [
        MetricRow("reached", float(len(tree.depth)), float(graph.n)),
        MetricRow("depth", float(depth)),
        # the flood settles within depth + O(1) synchronous rounds
        MetricRow("rounds", float(tree.rounds), float(depth + 3)),
    ]
    return QualityReport(title="congest bfs", rows=rows)


def _build_congest_broadcast(
    graph: WeightedGraph,
    params: Params,
    rng: random.Random,
    network: Optional[SyncNetwork] = None,
) -> Tuple[Any, int, NetStats]:
    net = _congest_network(graph, params, network)
    tree = build_bfs_tree(graph, _root(graph), network=net)
    payloads = _seeded_payloads(graph, params, rng)
    received, rounds = broadcast_messages(graph, tree, payloads, network=net)
    return (tree, payloads, received, rounds), net.total_rounds, NetStats.of(net)


def _certify_congest_broadcast(graph: WeightedGraph, artifact: Any, params: Params) -> QualityReport:
    tree, payloads, received, rounds = artifact
    expected = sorted(m for msgs in payloads.values() for m in msgs)
    short = sum(1 for v in graph.vertices() if sorted(received[v]) != expected)
    rows = [
        MetricRow("undelivered-nodes", float(short), 0.0),
        MetricRow("messages", float(len(expected))),
        # Lemma 1: M + 2·height + O(1) measured rounds
        MetricRow("rounds", float(rounds), float(len(expected) + 2 * tree.height + 4)),
    ]
    return QualityReport(title="congest broadcast", rows=rows)


def _build_congest_convergecast(
    graph: WeightedGraph,
    params: Params,
    rng: random.Random,
    network: Optional[SyncNetwork] = None,
) -> Tuple[Any, int, NetStats]:
    net = _congest_network(graph, params, network)
    tree = build_bfs_tree(graph, _root(graph), network=net)
    payloads = _seeded_payloads(graph, params, rng)
    gathered, rounds = convergecast_messages(graph, tree, payloads, network=net)
    return (tree, payloads, gathered, rounds), net.total_rounds, NetStats.of(net)


def _certify_congest_convergecast(graph: WeightedGraph, artifact: Any, params: Params) -> QualityReport:
    tree, payloads, gathered, rounds = artifact
    expected = sorted(m for msgs in payloads.values() for m in msgs)
    # multiset symmetric difference: counts dropped AND duplicated /
    # fabricated payloads (a pure length check would miss a swap)
    diff = Counter(expected)
    diff.subtract(Counter(gathered))
    mismatch = sum(abs(c) for c in diff.values())
    rows = [
        MetricRow("multiset-mismatch-at-root", float(mismatch), 0.0),
        MetricRow("messages", float(len(expected))),
        # Lemma 1: M + height + O(1) measured rounds
        MetricRow("rounds", float(rounds), float(len(expected) + tree.height + 4)),
    ]
    return QualityReport(title="congest convergecast", rows=rows)


def _build_congest_interval_scan(
    graph: WeightedGraph,
    params: Params,
    rng: random.Random,
    network: Optional[SyncNetwork] = None,
) -> Tuple[Any, int, NetStats]:
    net = _congest_network(graph, params, network)
    root = _root(graph)
    mst = kruskal_mst(graph)
    tour = compute_euler_tour(mst, root)
    spt = approx_spt(graph, root, params["eps_spt"])
    result = run_interval_scan(
        graph, tour, spt.dist, params["eps"], network=net
    )
    return (tour, spt, result), result.rounds, NetStats.of(net)


def _certify_congest_interval_scan(graph: WeightedGraph, artifact: Any, params: Params) -> QualityReport:
    tour, spt, result = artifact
    reference, _, _ = _select_break_points(
        tour, spt.dist, params["eps"], result.alpha, RoundLedger(), 1
    )
    mismatches = len(set(result.bp1) ^ set(reference))
    rows = [
        MetricRow("bp1-mismatch", float(mismatches), 0.0),
        MetricRow("bp1-size", float(len(result.bp1))),
        # §4.1: "after α − 1 rounds this procedure ends"
        MetricRow("rounds", float(result.rounds), float(result.alpha + 2)),
    ]
    return QualityReport(title="congest interval scan", rows=rows)


def _build_congest_cluster_round(
    graph: WeightedGraph,
    params: Params,
    rng: random.Random,
    network: Optional[SyncNetwork] = None,
) -> Tuple[Any, int, NetStats]:
    net = _congest_network(graph, params, network)
    root = _root(graph)
    tree = build_bfs_tree(graph, root, network=net)
    mst = kruskal_mst(graph)
    tour = compute_euler_tour(mst, root)
    # bucket width w_i = L / bucket-index with L = 2W (§5); index 2 here,
    # so the Equation threshold is eps * w_i = eps * W
    eps_wi = params["eps"] * mst.total_weight()
    cluster_of = _case1_clusters(tour, eps_wi)
    sim = simulate_case1_bucket(
        graph, tree, cluster_of, params["k"], rng=rng, network=net
    )
    return (tree, sim), net.total_rounds, NetStats.of(net)


def _certify_congest_cluster_round(graph: WeightedGraph, artifact: Any, params: Params) -> QualityReport:
    tree, sim = artifact
    # the simulation exposes the cluster graph and shifts it ran on, so
    # the abstract [EN17b] reference certifies against the same inputs
    pure = elkin_neiman_spanner(sim.cluster_graph, params["k"], shifts=sim.shifts)  # repro: allow[REP1001] -- shifts= pins the randomness; rng is documented-ignored when shifts are given
    mismatches = len(sim.edges ^ pure.edges)
    per_round_cap = 3 * (len(sim.cluster_graph) + 2 * tree.height) + 12
    worst = max((cc + bc for cc, bc in sim.round_breakdown), default=0)
    rows = [
        MetricRow("edge-mismatch", float(mismatches), 0.0),
        MetricRow("clusters", float(len(sim.cluster_graph))),
        # each simulated [EN17b] round costs O(|C_i| + D) measured rounds
        MetricRow("worst-round", float(worst), float(per_round_cap)),
    ]
    return QualityReport(title="congest cluster round", rows=rows)


# build(graph, params, rng) -> (artifact, rounds) — or, for CONGEST
# algorithms, build(graph, params, rng, network=None) -> (artifact,
# rounds, NetStats): the third element feeds the record's network block
# (a congest-prefixed algorithm returning a 2-tuple would silently record
# no traffic), and the network kwarg lets the parity suite inject a
# tracing/dense SyncNetwork.
BuildFn = Callable[..., Tuple[Any, ...]]
CertifyFn = Callable[..., QualityReport]

#: algorithm name -> (build, certify); profiles reference these keys.
ALGORITHMS: Dict[str, Tuple[BuildFn, CertifyFn]] = {
    "slt": (_build_slt, _certify_slt),
    "light-spanner": (_build_light_spanner, _certify_light_spanner),
    "net": (_build_net, _certify_net),
    "doubling-spanner": (_build_doubling, _certify_doubling),
    "estimate": (_build_estimate, _certify_estimate),
    "baswana-sen": (_build_baswana_sen, _certify_baswana_sen),
    "elkin-neiman": (_build_elkin_neiman, _certify_elkin_neiman),
    "greedy-spanner": (_build_greedy_spanner, _certify_greedy_spanner),
    "kernel-sssp": (_build_kernel_sssp, _certify_kernel_sssp),
    "mst": (_build_mst, _certify_mst),
    "congest-bfs": (_build_congest_bfs, _certify_congest_bfs),
    "congest-broadcast": (_build_congest_broadcast, _certify_congest_broadcast),
    "congest-convergecast": (
        _build_congest_convergecast,
        _certify_congest_convergecast,
    ),
    "congest-interval-scan": (
        _build_congest_interval_scan,
        _certify_congest_interval_scan,
    ),
    "congest-cluster-round": (
        _build_congest_cluster_round,
        _certify_congest_cluster_round,
    ),
}

#: algorithms that execute on a SyncNetwork and honour ``params["engine"]``.
CONGEST_ALGORITHMS = frozenset(
    name for name in ALGORITHMS if name.startswith("congest-")
)

#: algorithms whose certification runs the bounded-radius stretch engine
#: and therefore honours ``certify_workers`` / ``certify_sample``.
SPANNER_CERTIFIED_ALGORITHMS = frozenset(
    {"light-spanner", "doubling-spanner", "baswana-sen",
     "elkin-neiman", "greedy-spanner"}
)

#: algorithms that execute on the repro.kernels SSSP backends and honour
#: ``run_profile(kernel=...)`` directly (not just for certification).
KERNEL_ALGORITHMS = frozenset({"kernel-sssp"})

# artifact -> the weighted structure a distance oracle can serve.  Keyed
# by algorithm because each build returns a differently-shaped artifact;
# an algorithm absent here (nets, estimation, CONGEST traffic) produces
# no servable metric structure and is skipped by the query suite.
STRUCTURE_EXTRACTORS: Dict[str, Callable[[Any], WeightedGraph]] = {
    "slt": lambda res: res.tree,
    "light-spanner": lambda res: res.spanner,
    "doubling-spanner": lambda res: res.spanner,
    "baswana-sen": lambda artifact: artifact[0],
    "elkin-neiman": lambda artifact: artifact[1],
    "greedy-spanner": lambda spanner: spanner,
    "mst": lambda res: res.tree,
}

#: algorithms whose profiles can serve a query workload (``--suite queries``).
QUERYABLE_ALGORITHMS = frozenset(STRUCTURE_EXTRACTORS)


def queryable_profiles() -> List[Profile]:
    """The profiles the query-workload suite runs (servable structures)."""
    return [p for p in all_profiles() if p.algorithm in QUERYABLE_ALGORITHMS]


@dataclass
class ProfileRecord:
    """The machine-readable outcome of one profile run at one tier."""

    profile: str
    tier: str
    family: str
    algorithm: str
    section: str
    seed: int
    params: Dict[str, object]
    n: int
    m: int
    generation_seconds: float
    construction_seconds: float
    certification_seconds: float
    # None when the run opted out of the tracemalloc pass (--no-mem)
    peak_memory_bytes: Optional[int]
    rounds: Optional[int]
    metrics: Dict[str, Dict[str, object]]
    ok: bool
    # measured network traffic, from the SyncNetwork's lifetime total_*
    # counters (CONGEST profiles only; None elsewhere and in
    # schema-version-1 reports; net_rounds absent before schema 5)
    messages: Optional[int] = None
    words: Optional[int] = None
    active_node_rounds: Optional[int] = None
    net_rounds: Optional[int] = None
    # stretch-certification accounting (mode / sampled_edges / workers...;
    # spanner-certified profiles only, None elsewhere and in schema <= 2)
    certification: Optional[Dict[str, object]] = None
    # query-workload serving metrics (latency percentiles, throughput,
    # cache hit/miss split — see repro.harness.queries); present only when
    # the run requested queries on a queryable profile, and absent from
    # schema <= 3 reports
    queries: Optional[Dict[str, object]] = None
    # per-record observability: whether tracing was on, spans recorded
    # during this record, and the record's deltas of the process-wide
    # counter/gauge metrics (histograms stay out — their latency buckets
    # are wall-clock-shaped and the block must stay seeded-deterministic);
    # absent from schema <= 4 reports
    observability: Optional[Dict[str, object]] = None
    # daemon load-generation results (per-level latency percentiles,
    # achieved qps, failure rate — see repro.harness.loadgen); present
    # only on records produced by ``repro loadgen``, and absent from
    # schema <= 5 reports
    load: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (inverse of :meth:`from_dict`)."""
        return {
            "profile": self.profile,
            "tier": self.tier,
            "family": self.family,
            "algorithm": self.algorithm,
            "section": self.section,
            "seed": self.seed,
            "params": dict(self.params),
            "graph": {"n": self.n, "m": self.m},
            "timings": {
                "generation_seconds": self.generation_seconds,
                "construction_seconds": self.construction_seconds,
                "certification_seconds": self.certification_seconds,
            },
            "peak_memory_bytes": self.peak_memory_bytes,
            "rounds": self.rounds,
            "network": {
                "rounds": self.net_rounds,
                "messages": self.messages,
                "words": self.words,
                "active_node_rounds": self.active_node_rounds,
            },
            "certification": dict(self.certification)
            if self.certification is not None else None,
            "queries": dict(self.queries) if self.queries is not None else None,
            "observability": dict(self.observability)
            if self.observability is not None else None,
            "load": dict(self.load) if self.load is not None else None,
            "metrics": {k: dict(v) for k, v in self.metrics.items()},
            "ok": self.ok,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ProfileRecord":
        """Rebuild a record from its JSON form (schema versions 1 to 6).

        Blocks introduced by later schema versions (``network``,
        ``certification``, ``queries``, ``observability``, ``load``)
        load as ``None``/empty when the report predates them — a v1
        report must keep comparing cleanly under the current schema.
        """
        timings = data["timings"]
        graph = data["graph"]
        network = data.get("network") or {}
        certification = data.get("certification")
        queries = data.get("queries")
        observability = data.get("observability")
        load = data.get("load")
        return cls(
            profile=data["profile"],
            tier=data["tier"],
            family=data["family"],
            algorithm=data["algorithm"],
            section=data["section"],
            seed=data["seed"],
            params=dict(data["params"]),
            n=graph["n"],
            m=graph["m"],
            generation_seconds=timings["generation_seconds"],
            construction_seconds=timings["construction_seconds"],
            certification_seconds=timings["certification_seconds"],
            peak_memory_bytes=data["peak_memory_bytes"],
            rounds=data["rounds"],
            metrics={k: dict(v) for k, v in data["metrics"].items()},
            ok=data["ok"],
            messages=network.get("messages"),
            words=network.get("words"),
            active_node_rounds=network.get("active_node_rounds"),
            net_rounds=network.get("rounds"),
            certification=dict(certification)
            if certification is not None else None,
            queries=dict(queries) if queries is not None else None,
            observability=dict(observability)
            if observability is not None else None,
            load=dict(load) if load is not None else None,
        )


def _report_metrics(report: QualityReport) -> Dict[str, Dict[str, object]]:
    return {
        row.name: {"measured": row.measured, "bound": row.bound, "ok": row.ok}
        for row in report.rows
    }


def _observability_block(
    counters_before: Dict[str, float], spans_before: int
) -> Dict[str, object]:
    """The record's ``observability`` block: this record's metric activity.

    Counters report the *delta* over the record (the process-wide
    registry accumulates across a suite); gauges report their current
    level — a delta of a last-value-wins level is meaningless.
    Histograms are excluded on purpose: latency buckets are
    wall-clock-shaped, and this block must stay seeded-deterministic so
    BENCH reports byte-compare across identically-seeded runs.
    """
    metric_values: Dict[str, float] = {}
    for name, data in obs_metrics.snapshot().items():
        kind = data["type"]
        if kind == "counter":
            metric_values[name] = data["value"] - counters_before.get(name, 0)
        elif kind == "gauge":
            metric_values[name] = data["value"]
    return {
        "enabled": obs_trace.enabled(),
        "span_count": obs_trace.span_count() - spans_before,
        "metrics": metric_values,
    }


def run_profile(
    profile: Profile,
    tier: str,
    certify: bool = True,
    measure_memory: bool = True,
    engine: str = "sparse",
    certify_workers: int = 1,
    certify_sample: Optional[float] = None,
    queries: bool = False,
    kernel: str = "python",
) -> ProfileRecord:
    """Execute ``profile`` at ``tier`` and return its record.

    The construction is wall-clock-timed with :mod:`tracemalloc` *off*
    (tracing slows allocation-heavy Python severalfold and would
    misrepresent real speed); when ``measure_memory`` is set the
    construction is then re-run — same seed, so the same work — under
    tracing to sample peak memory.  Pass ``measure_memory=False``
    (``--no-mem``) to skip the second pass on expensive tiers; the
    record's ``peak_memory_bytes`` is then ``null``.

    ``engine`` selects the CONGEST round engine (``"sparse"`` — the
    default — or ``"dense"``) for profiles whose algorithm runs on a
    :class:`~repro.congest.simulator.SyncNetwork`; other profiles ignore
    it.  The choice is stamped into the record's params, and both engines
    produce identical rounds/messages/words (the parity suite's claim) —
    only wall-clock and ``active_node_rounds`` differ.

    ``certify_workers`` / ``certify_sample`` tune the bounded-radius
    stretch-certification engine for spanner-certified profiles (process
    fan-out and seeded edge sampling respectively; see
    :func:`repro.analysis.certify.certify_edge_stretch`); other profiles
    ignore them.  The record's ``certification`` block reports what the
    engine actually did.  Certification of a profile whose
    ``certifiable`` flag is False is skipped at the stress tier (the
    opt-out for workloads the bounded engine cannot make tractable).

    ``queries=True`` additionally serves the tier's seeded query mix
    (:data:`repro.harness.queries.QUERY_MIXES`) through a
    :class:`~repro.oracle.DistanceOracle` built over the constructed
    structure, filling the record's ``queries`` block with latency
    percentiles, throughput and the cache hit/miss split; profiles whose
    algorithm produces no servable structure ignore the flag.

    ``kernel`` selects the SSSP backend (:mod:`repro.kernels`) for the
    profiles that honour one: ``kernel-sssp`` profiles run their batched
    SSSP on it, and spanner-certified profiles hand it to the
    certification engine as ``certify_kernel``.  The default
    ``"python"`` keeps every committed baseline byte-stable; passing
    ``"numpy"``/``"auto"`` is the explicit opt-in (stamped into the
    record's params so reports are attributable).

    Raises
    ------
    KeyError
        On an unknown tier or algorithm.
    ValueError
        On an unknown engine name, non-positive ``certify_workers`` or
        out-of-range ``certify_sample``.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    if certify_workers < 1:
        raise ValueError(f"certify_workers must be >= 1, got {certify_workers}")
    if certify_sample is not None and not (0.0 < certify_sample <= 1.0):
        raise ValueError(f"certify_sample must be in (0, 1], got {certify_sample}")
    build, certify_fn = ALGORITHMS[profile.algorithm]
    params = profile.algo_params(tier)
    if profile.algorithm in CONGEST_ALGORITHMS:
        params["engine"] = engine
    if profile.algorithm in SPANNER_CERTIFIED_ALGORITHMS:
        params["certify_workers"] = certify_workers
        if certify_sample is not None:
            params["certify_sample"] = certify_sample
        if kernel != "python":
            params["certify_kernel"] = kernel
    if profile.algorithm in KERNEL_ALGORITHMS and kernel != "python":
        params["kernel"] = kernel
    if tier == "stress" and not profile.certifiable:
        certify = False

    counters_before = obs_metrics.scalars()
    spans_before = obs_trace.span_count()
    profile_span = obs_trace.span(
        "harness.profile", profile=profile.name, tier=tier
    )
    profile_span.__enter__()
    try:
        with obs_trace.timed_span("harness.generate") as t_gen:
            graph = profile.build_graph(tier)
        generation_seconds = t_gen.wall_s

        with obs_trace.timed_span("harness.build") as t_build:
            built = build(graph, params, random.Random(profile.seed))
        artifact, rounds = built[0], built[1]
        stats: Optional[NetStats] = built[2] if len(built) > 2 else None
        if stats is None and profile.algorithm in CONGEST_ALGORITHMS:
            # a congest build that forgets the NetStats element would
            # silently disable the messages/words/active-node-rounds
            # regression gate
            raise TypeError(
                f"CONGEST build {profile.algorithm!r} must return "
                f"(artifact, rounds, NetStats)"
            )
        construction_seconds = t_build.wall_s

        peak_memory: Optional[int] = None
        if measure_memory:
            with obs_trace.span("harness.memory"):
                tracemalloc_was_tracing = tracemalloc.is_tracing()
                if not tracemalloc_was_tracing:
                    tracemalloc.start()
                tracemalloc.reset_peak()
                build(graph, params, random.Random(profile.seed))
                _, peak_memory = tracemalloc.get_traced_memory()
                if not tracemalloc_was_tracing:
                    tracemalloc.stop()

        metrics: Dict[str, Dict[str, object]] = {}
        ok = True
        certification_seconds = 0.0
        certification: Optional[Dict[str, object]] = None
        if certify:
            with obs_trace.timed_span("harness.certify") as t_cert:
                report = certify_fn(graph, artifact, params)
            certification_seconds = t_cert.wall_s
            metrics = _report_metrics(report)
            ok = report.ok
            certification = getattr(report, "certification", None)

        query_block: Optional[Dict[str, object]] = None
        if queries and profile.algorithm in QUERYABLE_ALGORITHMS:
            structure = STRUCTURE_EXTRACTORS[profile.algorithm](artifact)
            with obs_trace.span("harness.queries"):
                query_block = run_query_workload(
                    structure, QUERY_MIXES[tier], seed=profile.seed
                )
    finally:
        profile_span.__exit__(None, None, None)

    return ProfileRecord(
        profile=profile.name,
        tier=tier,
        family=profile.family,
        algorithm=profile.algorithm,
        section=profile.section,
        seed=profile.seed,
        params=params,
        n=graph.n,
        m=graph.m,
        generation_seconds=generation_seconds,
        construction_seconds=construction_seconds,
        certification_seconds=certification_seconds,
        peak_memory_bytes=peak_memory,
        rounds=rounds,
        metrics=metrics,
        ok=ok,
        messages=stats.messages if stats is not None else None,
        words=stats.words if stats is not None else None,
        active_node_rounds=stats.active_node_rounds if stats is not None else None,
        net_rounds=stats.rounds if stats is not None else None,
        certification=certification,
        queries=query_block,
        observability=_observability_block(counters_before, spans_before),
    )


def run_suite(
    profiles: Optional[List[Profile]] = None,
    tier: str = "smoke",
    certify: bool = True,
    measure_memory: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    engine: str = "sparse",
    certify_workers: int = 1,
    certify_sample: Optional[float] = None,
    queries: bool = False,
    kernel: str = "python",
) -> List[ProfileRecord]:
    """Run ``profiles`` (default: all registered) at ``tier`` in name order."""
    selected = profiles if profiles is not None else all_profiles()
    records: List[ProfileRecord] = []
    with obs_trace.span("harness.suite", tier=tier, profiles=len(selected)):
        for i, profile in enumerate(selected, start=1):
            record = run_profile(profile, tier, certify=certify,
                                 measure_memory=measure_memory, engine=engine,
                                 certify_workers=certify_workers,
                                 certify_sample=certify_sample,
                                 queries=queries, kernel=kernel)
            records.append(record)
            if progress is not None:
                status = "ok" if record.ok else "VIOLATED"
                rounds = "-" if record.rounds is None else str(record.rounds)
                progress(
                    f"[{i}/{len(selected)}] {profile.name:<24} "
                    f"n={record.n:<5} "
                    f"build {record.construction_seconds:7.3f}s  "
                    f"cert {record.certification_seconds:7.3f}s  "
                    f"rounds {rounds:>6}  {status}"
                )
    return records


def run_huge_profile(
    profile: Profile,
    kernel: str = "auto",
    verify: bool = True,
    cache_dir: Optional[str] = None,
) -> ProfileRecord:
    """Run ``profile``'s huge tier straight from the packed mmap format.

    The huge tier (10^6+ vertices) never materializes a
    :class:`WeightedGraph` — the workload is generated once into the
    versioned ``.rpg`` binary format (cached under ``cache_dir``, see
    :func:`repro.kernels.ensure_packed`), mmapped back as zero-copy CSR
    columns, and fed to the batched SSSP kernels directly.  The record's
    generation time therefore covers pack-or-cache-hit, construction the
    batched SSSP, and certification the fixed-point residual check
    (residual 0 and no unsettled arcs certify every distance row exact).

    ``kernel`` defaults to ``"auto"`` — numpy when available, else the
    pure-Python kernel (slow at this scale, but correct).  ``verify``
    controls the CRC pass on load.

    Raises
    ------
    KeyError
        When ``profile`` does not define a huge tier.
    ValueError
        When the profile's family has no streaming packer.
    RuntimeError
        When ``kernel="numpy"`` and numpy is not installed.
    """
    from repro.kernels import ensure_packed, load_packed, resolve_kernel

    if HUGE_TIER not in profile.tiers:
        raise KeyError(
            f"profile {profile.name!r} does not define a {HUGE_TIER!r} tier"
        )
    if profile.family != "ring-chords":
        raise ValueError(
            f"no streaming packer for family {profile.family!r}; the huge "
            f"tier currently runs the ring-chords family only"
        )
    gp = profile.graph_params(HUGE_TIER)
    n, chords = int(gp["n"]), int(gp["chords"])  # type: ignore[arg-type]
    params = profile.algo_params(HUGE_TIER)
    backend = resolve_kernel(kernel)
    params["kernel"] = backend

    counters_before = obs_metrics.scalars()
    spans_before = obs_trace.span_count()
    profile_span = obs_trace.span(
        "harness.profile", profile=profile.name, tier=HUGE_TIER, kernel=backend
    )
    profile_span.__enter__()
    try:
        with obs_trace.timed_span("harness.generate") as t_gen:
            path = ensure_packed(n, chords, profile.seed, cache_dir=cache_dir)
            pg = load_packed(path, verify=verify)
        generation_seconds = t_gen.wall_s
        try:
            sources = _kernel_sources(pg.n, int(params.get("sources", 4)))
            if backend == "numpy":
                from repro.kernels import npkern

                with obs_trace.timed_span("harness.build") as t_build:
                    prep = npkern.prepare(pg.indptr, pg.indices, pg.weights)
                    matrix = npkern.sssp_matrix_prepared(prep, sources)
                with obs_trace.timed_span("harness.certify") as t_cert:
                    worst, unsettled = npkern.residual_matrix_prepared(
                        prep, matrix
                    )
            else:
                from repro.kernels import pykern

                with obs_trace.timed_span("harness.build") as t_build:
                    py_matrix = pykern.sssp_matrix(
                        pg.indptr, pg.indices, pg.weights, sources
                    )
                with obs_trace.timed_span("harness.certify") as t_cert:
                    worst, unsettled = 0.0, 0
                    for row in py_matrix:
                        w, u = pykern.residual(
                            pg.indptr, pg.indices, pg.weights, row
                        )
                        worst = max(worst, w)
                        unsettled += u
            n_packed, m_arcs = pg.n, pg.m_arcs
        finally:
            pg.close()
    finally:
        profile_span.__exit__(None, None, None)

    report = QualityReport(title="kernel sssp (huge)", rows=[
        MetricRow("residual", worst, 1e-6),
        MetricRow("unsettled-arcs", float(unsettled), 0.0),
        MetricRow("sources", float(len(sources))),
    ])
    return ProfileRecord(
        profile=profile.name,
        tier=HUGE_TIER,
        family=profile.family,
        algorithm=profile.algorithm,
        section=profile.section,
        seed=profile.seed,
        params=params,
        n=n_packed,
        m=m_arcs // 2,
        generation_seconds=generation_seconds,
        construction_seconds=t_build.wall_s,
        certification_seconds=t_cert.wall_s,
        peak_memory_bytes=None,
        rounds=None,
        metrics=_report_metrics(report),
        ok=report.ok,
        certification={
            "mode": "fixed-point",
            "kernel": backend,
            "sources": len(sources),
            "unsettled_arcs": unsettled,
            "packed_file": str(path),
        },
        observability=_observability_block(counters_before, spans_before),
    )
