"""Profile execution: build the workload, run the algorithm, certify.

:func:`run_profile` turns one (:class:`~repro.harness.profiles.Profile`,
tier) pair into a :class:`ProfileRecord` — the machine-readable unit the
JSON reports are made of.  Construction and certification are
wall-clock-timed separately (certification is often the more expensive
half at paper sizes and must not pollute the construction trend), peak
memory is sampled with :mod:`tracemalloc` around the construction only,
round counts come from each construction's :class:`RoundLedger`, and
quality metrics reuse :class:`repro.analysis.report.QualityReport` so
the bound-certification logic stays in one place.
"""

from __future__ import annotations

import math
import random
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.report import MetricRow, QualityReport, net_report, slt_report, spanner_report
from repro.analysis.validation import verify_spanning_tree
from repro.congest import RoundLedger, build_bfs_tree
from repro.core import (
    build_net,
    doubling_spanner,
    estimate_mst_weight_via_nets,
    light_spanner,
    shallow_light_tree,
)
from repro.graphs import WeightedGraph
from repro.harness.profiles import Profile, all_profiles
from repro.mst import boruvka_mst, kruskal_mst
from repro.spanners import baswana_sen_spanner, elkin_neiman_spanner, greedy_spanner


def _root(graph: WeightedGraph):
    return min(graph.vertices(), key=repr)


# Each algorithm entry is (build, certify):
#   build(graph, params, rng)    -> (artifact, rounds or None)
#   certify(graph, artifact, params) -> QualityReport
def _build_slt(graph, params, rng):
    res = shallow_light_tree(graph, _root(graph), params["alpha"])
    return res, res.rounds


def _certify_slt(graph, res, params):
    return slt_report(
        graph, res.tree, res.root,
        stretch_bound=res.stretch_bound,
        lightness_bound=res.lightness_bound,
        rounds=res.rounds,
    )


def _build_light_spanner(graph, params, rng):
    res = light_spanner(graph, params["k"], params["eps"], rng)
    return res, res.rounds


def _certify_light_spanner(graph, res, params):
    return spanner_report(
        graph, res.spanner, stretch_bound=res.stretch_bound, rounds=res.rounds
    )


def _build_net(graph, params, rng):
    res = build_net(graph, params["scale"], params["delta"], rng)
    return res, res.rounds


def _certify_net(graph, res, params):
    return net_report(graph, res.points, res.alpha, res.beta, rounds=res.rounds)


def _build_doubling(graph, params, rng):
    res = doubling_spanner(
        graph, params["eps"], rng, net_method=params.get("net_method", "greedy")
    )
    return res, res.rounds


def _certify_doubling(graph, res, params):
    # per-edge stretch is bounded by the pairwise guarantee 1 + 30ε
    return spanner_report(
        graph, res.spanner, stretch_bound=res.stretch_bound, rounds=res.rounds
    )


def _build_estimate(graph, params, rng):
    est = estimate_mst_weight_via_nets(
        graph, net_method=params.get("net_method", "greedy"), rng=rng
    )
    return est, est.ledger.total


def _certify_estimate(graph, est, params):
    # Theorem 7 sandwich: 1 <= Ψ/L <= O(α log n); both sides as upper bounds
    upper = 16.0 * est.alpha * math.log2(max(graph.n, 2))
    ratio = est.approximation_ratio
    rows = [
        MetricRow("psi/L", ratio, upper),
        MetricRow("L/psi", 1.0 / ratio if ratio > 0 else float("inf"), 1.0),
        MetricRow("scales", float(len(est.net_sizes))),
    ]
    return QualityReport(title="mst-weight estimate", rows=rows)


def _build_baswana_sen(graph, params, rng):
    ledger = RoundLedger()
    spanner = baswana_sen_spanner(graph, params["k"], rng, ledger)
    return (spanner, ledger), ledger.total


def _certify_baswana_sen(graph, artifact, params):
    spanner, ledger = artifact
    bound = 2 * params["k"] - 1
    return spanner_report(graph, spanner, stretch_bound=bound, rounds=ledger.total)


def _build_elkin_neiman(graph, params, rng):
    adjacency = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    run = elkin_neiman_spanner(adjacency, params["k"], rng)
    spanner = WeightedGraph(graph.vertices())
    for edge in run.edges:
        u, v = tuple(edge)
        spanner.add_edge(u, v, graph.weight(u, v))
    return (run, spanner), run.rounds


def _certify_elkin_neiman(graph, artifact, params):
    run, spanner = artifact
    bound = 2 * params["k"] - 1
    return spanner_report(graph, spanner, stretch_bound=bound, rounds=run.rounds)


def _build_greedy_spanner(graph, params, rng):
    return greedy_spanner(graph, 2 * params["k"] - 1), None


def _certify_greedy_spanner(graph, spanner, params):
    return spanner_report(graph, spanner, stretch_bound=2 * params["k"] - 1)


def _build_mst(graph, params, rng):
    res = boruvka_mst(graph)
    return res, res.rounds


def _certify_mst(graph, res, params):
    verify_spanning_tree(graph, res.tree)
    optimal = kruskal_mst(graph).total_weight()
    ratio = res.tree.total_weight() / optimal if optimal > 0 else 1.0
    rows = [
        MetricRow("weight/optimal", ratio, 1.0),
        MetricRow("phases", float(res.phases), float(math.ceil(math.log2(max(graph.n, 2))))),
        MetricRow("rounds", float(res.rounds)),
    ]
    return QualityReport(title="boruvka mst", rows=rows)


def _build_congest_bfs(graph, params, rng):
    tree = build_bfs_tree(graph, _root(graph))
    return tree, tree.rounds


def _certify_congest_bfs(graph, tree, params):
    depth = max(tree.depth.values())
    rows = [
        MetricRow("reached", float(len(tree.depth)), float(graph.n)),
        MetricRow("depth", float(depth)),
        # the flood settles within depth + O(1) synchronous rounds
        MetricRow("rounds", float(tree.rounds), float(depth + 3)),
    ]
    return QualityReport(title="congest bfs", rows=rows)


BuildFn = Callable[..., Tuple[object, Optional[int]]]
CertifyFn = Callable[..., QualityReport]

#: algorithm name -> (build, certify); profiles reference these keys.
ALGORITHMS: Dict[str, Tuple[BuildFn, CertifyFn]] = {
    "slt": (_build_slt, _certify_slt),
    "light-spanner": (_build_light_spanner, _certify_light_spanner),
    "net": (_build_net, _certify_net),
    "doubling-spanner": (_build_doubling, _certify_doubling),
    "estimate": (_build_estimate, _certify_estimate),
    "baswana-sen": (_build_baswana_sen, _certify_baswana_sen),
    "elkin-neiman": (_build_elkin_neiman, _certify_elkin_neiman),
    "greedy-spanner": (_build_greedy_spanner, _certify_greedy_spanner),
    "mst": (_build_mst, _certify_mst),
    "congest-bfs": (_build_congest_bfs, _certify_congest_bfs),
}


@dataclass
class ProfileRecord:
    """The machine-readable outcome of one profile run at one tier."""

    profile: str
    tier: str
    family: str
    algorithm: str
    section: str
    seed: int
    params: Dict[str, object]
    n: int
    m: int
    generation_seconds: float
    construction_seconds: float
    certification_seconds: float
    peak_memory_bytes: int
    rounds: Optional[int]
    metrics: Dict[str, Dict[str, object]]
    ok: bool

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (inverse of :meth:`from_dict`)."""
        return {
            "profile": self.profile,
            "tier": self.tier,
            "family": self.family,
            "algorithm": self.algorithm,
            "section": self.section,
            "seed": self.seed,
            "params": dict(self.params),
            "graph": {"n": self.n, "m": self.m},
            "timings": {
                "generation_seconds": self.generation_seconds,
                "construction_seconds": self.construction_seconds,
                "certification_seconds": self.certification_seconds,
            },
            "peak_memory_bytes": self.peak_memory_bytes,
            "rounds": self.rounds,
            "metrics": {k: dict(v) for k, v in self.metrics.items()},
            "ok": self.ok,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ProfileRecord":
        """Rebuild a record from its JSON form."""
        timings = data["timings"]
        graph = data["graph"]
        return cls(
            profile=data["profile"],
            tier=data["tier"],
            family=data["family"],
            algorithm=data["algorithm"],
            section=data["section"],
            seed=data["seed"],
            params=dict(data["params"]),
            n=graph["n"],
            m=graph["m"],
            generation_seconds=timings["generation_seconds"],
            construction_seconds=timings["construction_seconds"],
            certification_seconds=timings["certification_seconds"],
            peak_memory_bytes=data["peak_memory_bytes"],
            rounds=data["rounds"],
            metrics={k: dict(v) for k, v in data["metrics"].items()},
            ok=data["ok"],
        )


def _report_metrics(report: QualityReport) -> Dict[str, Dict[str, object]]:
    return {
        row.name: {"measured": row.measured, "bound": row.bound, "ok": row.ok}
        for row in report.rows
    }


def run_profile(
    profile: Profile,
    tier: str,
    certify: bool = True,
    measure_memory: bool = True,
) -> ProfileRecord:
    """Execute ``profile`` at ``tier`` and return its record.

    The construction is wall-clock-timed with :mod:`tracemalloc` *off*
    (tracing slows allocation-heavy Python severalfold and would
    misrepresent real speed); when ``measure_memory`` is set the
    construction is then re-run — same seed, so the same work — under
    tracing to sample peak memory.  Pass ``measure_memory=False`` to
    skip the second pass on expensive tiers.

    Raises
    ------
    KeyError
        On an unknown tier or algorithm.
    """
    build, certify_fn = ALGORITHMS[profile.algorithm]
    params = profile.algo_params(tier)

    t0 = time.perf_counter()
    graph = profile.build_graph(tier)
    generation_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    artifact, rounds = build(graph, params, random.Random(profile.seed))
    construction_seconds = time.perf_counter() - t0

    peak_memory = 0
    if measure_memory:
        tracemalloc_was_tracing = tracemalloc.is_tracing()
        if not tracemalloc_was_tracing:
            tracemalloc.start()
        tracemalloc.reset_peak()
        build(graph, params, random.Random(profile.seed))
        _, peak_memory = tracemalloc.get_traced_memory()
        if not tracemalloc_was_tracing:
            tracemalloc.stop()

    metrics: Dict[str, Dict[str, object]] = {}
    ok = True
    certification_seconds = 0.0
    if certify:
        t0 = time.perf_counter()
        report = certify_fn(graph, artifact, params)
        certification_seconds = time.perf_counter() - t0
        metrics = _report_metrics(report)
        ok = report.ok

    return ProfileRecord(
        profile=profile.name,
        tier=tier,
        family=profile.family,
        algorithm=profile.algorithm,
        section=profile.section,
        seed=profile.seed,
        params=params,
        n=graph.n,
        m=graph.m,
        generation_seconds=generation_seconds,
        construction_seconds=construction_seconds,
        certification_seconds=certification_seconds,
        peak_memory_bytes=peak_memory,
        rounds=rounds,
        metrics=metrics,
        ok=ok,
    )


def run_suite(
    profiles: Optional[List[Profile]] = None,
    tier: str = "smoke",
    certify: bool = True,
    measure_memory: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> List[ProfileRecord]:
    """Run ``profiles`` (default: all registered) at ``tier`` in name order."""
    selected = profiles if profiles is not None else all_profiles()
    records: List[ProfileRecord] = []
    for i, profile in enumerate(selected, start=1):
        record = run_profile(profile, tier, certify=certify,
                             measure_memory=measure_memory)
        records.append(record)
        if progress is not None:
            status = "ok" if record.ok else "VIOLATED"
            rounds = "-" if record.rounds is None else str(record.rounds)
            progress(
                f"[{i}/{len(selected)}] {profile.name:<24} n={record.n:<5} "
                f"build {record.construction_seconds:7.3f}s  "
                f"cert {record.certification_seconds:7.3f}s  "
                f"rounds {rounds:>6}  {status}"
            )
    return records
