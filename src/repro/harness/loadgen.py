"""Load generation against the serving daemon: closed- and open-loop.

The ``queries`` block (schema 4) measures the oracle *in-process*; this
module measures the full serving stack — daemon, socket protocol and N
workers — under controlled concurrency, filling the schema-v6 ``load``
block.  Two driver families, the classic pair:

closed loop
    ``k`` clients, each with one connection, each issuing its share of
    the seeded pair stream back-to-back (``pairs[i::k]``, ``repeats``
    passes).  Request count is a pure function of the mix, so the
    ``--compare`` gate can hold it exactly while latency/qps gate with
    wall-clock tolerance.  Sweeping ``k`` yields the qps-vs-concurrency
    saturation curve.

open loop
    Arrivals follow a *seeded* arrival process — Poisson or bursty
    (on/off phases with seeded exponential lengths, Poisson-within-on)
    — fixed before the run starts: :func:`request_schedule` is a pure
    function of ``(pairs, mode, rate, duration, seed)``, so two
    identically-seeded runs issue byte-identical schedules
    (:func:`schedule_bytes`, the determinism suite's contract) across
    ``PYTHONHASHSEED``.  Latency is measured from the *scheduled*
    arrival time, so queueing delay under overload is visible instead
    of coordinated-omission-hidden.

Per level the block records request count, failures, failure rate,
p50/p99/p999 latency, achieved qps and the offered rate; levels gate in
``compare_reports`` like the queries block (latency with tolerance over
a jitter floor, qps inverted, deterministic counts at the rounds
tolerance).
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import random
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graphs.weighted_graph import WeightedGraph
from repro.harness.profiles import Profile
from repro.serve import (
    Address,
    ConnectionClosed,
    ProtocolError,
    ServeClient,
    address_of,
)

#: open-loop arrival processes :func:`request_schedule` understands.
ARRIVALS = ("poisson", "bursty")

#: load-generation modes.
MODES = ("closed", "open")

#: fraction of a bursty cycle spent in the on phase, and the mean cycle
#: length in seconds (arrivals within the on phase are Poisson at
#: ``rate / BURSTY_ON_FRACTION`` so the *average* offered rate matches).
BURSTY_ON_FRACTION = 0.25
BURSTY_CYCLE_SECONDS = 1.0

LabelPair = Tuple[str, str]
ScheduleEntry = Tuple[float, str, str]


# ----------------------------------------------------------------------
# Seeded request schedules (pure functions — the determinism contract)
# ----------------------------------------------------------------------
def poisson_schedule(
    pairs: Sequence[LabelPair], rate: float, duration: float, seed: int
) -> List[ScheduleEntry]:
    """Poisson arrivals at ``rate``/s over ``duration`` seconds.

    Pairs are consumed cyclically in mix order (the mix's hot/cold
    interleaving is already seeded); arrival gaps come from one
    ``random.Random(seed)``.  Pure function of its arguments.
    """
    if rate <= 0 or duration <= 0:
        raise ValueError(f"rate and duration must be positive, got {rate}, {duration}")
    rng = random.Random(seed)
    out: List[ScheduleEntry] = []
    t = 0.0
    i = 0
    while True:
        t += rng.expovariate(rate)
        if t >= duration:
            return out
        u, v = pairs[i % len(pairs)]
        out.append((t, u, v))
        i += 1


def bursty_schedule(
    pairs: Sequence[LabelPair], rate: float, duration: float, seed: int
) -> List[ScheduleEntry]:
    """On/off bursty arrivals averaging ``rate``/s over ``duration``.

    The process alternates on and off phases with seeded exponential
    lengths (mean cycle :data:`BURSTY_CYCLE_SECONDS`, on fraction
    :data:`BURSTY_ON_FRACTION`); within an on phase arrivals are Poisson
    at ``rate / BURSTY_ON_FRACTION`` so the long-run average offered
    rate is ``rate``.  Pure function of its arguments.
    """
    if rate <= 0 or duration <= 0:
        raise ValueError(f"rate and duration must be positive, got {rate}, {duration}")
    rng = random.Random(seed)
    burst_rate = rate / BURSTY_ON_FRACTION
    mean_on = BURSTY_CYCLE_SECONDS * BURSTY_ON_FRACTION
    mean_off = BURSTY_CYCLE_SECONDS * (1.0 - BURSTY_ON_FRACTION)
    out: List[ScheduleEntry] = []
    t = 0.0
    i = 0
    on = True
    while t < duration:
        phase_end = min(duration, t + rng.expovariate(1.0 / (mean_on if on else mean_off)))
        if on:
            tt = t
            while True:
                tt += rng.expovariate(burst_rate)
                if tt >= phase_end:
                    break
                u, v = pairs[i % len(pairs)]
                out.append((tt, u, v))
                i += 1
        t = phase_end
        on = not on
    return out


def request_schedule(
    pairs: Sequence[LabelPair],
    arrivals: str,
    rate: float,
    duration: float,
    seed: int,
) -> List[ScheduleEntry]:
    """The open-loop schedule for one level (see module docstring).

    Raises
    ------
    ValueError
        On an unknown arrival process or non-positive rate/duration.
    """
    if arrivals == "poisson":
        return poisson_schedule(pairs, rate, duration, seed)
    if arrivals == "bursty":
        return bursty_schedule(pairs, rate, duration, seed)
    raise ValueError(f"unknown arrival process {arrivals!r}; choose from {ARRIVALS}")


def schedule_bytes(schedule: Sequence[ScheduleEntry]) -> bytes:
    """Canonical byte form of a schedule (the byte-identity contract).

    JSON with shortest-repr floats — identical schedules serialize to
    identical bytes on any platform and under any ``PYTHONHASHSEED``.
    """
    return json.dumps(
        [[t, u, v] for t, u, v in schedule], separators=(",", ":")
    ).encode("utf-8")


def schedule_digest(schedule: Sequence[ScheduleEntry]) -> str:
    """sha256 hex digest of :func:`schedule_bytes` (stamped per level)."""
    return hashlib.sha256(schedule_bytes(schedule)).hexdigest()


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
@dataclass
class LevelResult:
    """Measured outcome of one load level (one concurrency or rate)."""

    mode: str
    level: float  # concurrency (closed) or offered rate in qps (open)
    requests: int
    failures: int
    duration_s: float
    p50_ms: float
    p99_ms: float
    p999_ms: float
    qps: float
    offered_rate: Optional[float] = None  # open loop only
    digest: Optional[str] = None  # open loop: schedule sha256

    @property
    def failure_rate(self) -> float:
        return self.failures / max(1, self.requests)

    def key(self) -> str:
        """The level's name in compare quantities (``c4`` / ``r100``)."""
        prefix = "c" if self.mode == "closed" else "r"
        level = int(self.level) if float(self.level).is_integer() else self.level
        return f"{prefix}{level}"

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "mode": self.mode,
            "level": self.level,
            "key": self.key(),
            "requests": self.requests,
            "failures": self.failures,
            "failure_rate": self.failure_rate,
            "duration_s": self.duration_s,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
            "qps": self.qps,
        }
        if self.offered_rate is not None:
            out["offered_rate"] = self.offered_rate
        if self.digest is not None:
            out["schedule_sha256"] = self.digest
        return out


def _percentiles(latencies_s: List[float]) -> Tuple[float, float, float]:
    """Exact sample percentiles (ms) — (p50, p99, p999)."""
    if not latencies_s:
        return 0.0, 0.0, 0.0
    ordered = sorted(latencies_s)
    count = len(ordered)

    def pct(p: float) -> float:
        return ordered[min(count - 1, int(p * count))] * 1000.0

    return pct(0.50), pct(0.99), pct(0.999)


def run_closed_level(
    address: Address,
    pairs: Sequence[LabelPair],
    concurrency: int,
    repeats: int = 1,
    timeout: float = 30.0,
    collect_answers: bool = False,
) -> Tuple[LevelResult, List[Tuple[str, str, float]]]:
    """One closed-loop level: ``concurrency`` clients, fixed request count.

    Client ``i`` issues ``pairs[i::concurrency]`` back-to-back,
    ``repeats`` times — the deterministic partition that makes
    workers=N answer-compare against workers=1.  Returns the level
    result plus (when ``collect_answers``) every ``(u, v, distance)``
    in issue order per client.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    latencies: List[List[float]] = [[] for _ in range(concurrency)]
    answers: List[List[Tuple[str, str, float]]] = [[] for _ in range(concurrency)]
    failures = [0] * concurrency
    clock = time.perf_counter

    def drive(slot: int) -> None:
        my_pairs = list(pairs[slot::concurrency])
        client: Optional[ServeClient] = None
        try:
            client = ServeClient.open(address, timeout=timeout)
            for _ in range(repeats):
                for u, v in my_pairs:
                    t0 = clock()
                    try:
                        d = client.query(u, v)
                    except ProtocolError:
                        failures[slot] += 1
                        continue
                    except (ConnectionClosed, OSError):
                        failures[slot] += 1
                        client.close()
                        client = ServeClient.open(address, timeout=timeout)
                        continue
                    latencies[slot].append(clock() - t0)
                    if collect_answers:
                        answers[slot].append((u, v, d))
        finally:
            if client is not None:
                client.close()

    threads = [
        threading.Thread(target=drive, args=(slot,), daemon=True)
        for slot in range(concurrency)
    ]
    t_start = clock()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = clock() - t_start
    flat = [lat for per in latencies for lat in per]
    p50, p99, p999 = _percentiles(flat)
    result = LevelResult(
        mode="closed",
        level=float(concurrency),
        requests=len(pairs) * repeats,
        failures=sum(failures),
        duration_s=wall,
        p50_ms=p50,
        p99_ms=p99,
        p999_ms=p999,
        qps=len(flat) / wall if wall > 0 else 0.0,
    )
    return result, [a for per in answers for a in per]


def run_open_level(
    address: Address,
    schedule: Sequence[ScheduleEntry],
    clients: int = 8,
    timeout: float = 30.0,
) -> LevelResult:
    """One open-loop level: replay ``schedule`` through a client pool.

    A dispatcher releases each request at its scheduled offset; pool
    threads (one connection each) serve them in arrival order.  Latency
    is measured from the scheduled arrival, so queueing delay when the
    daemon cannot keep up is part of the number (no coordinated
    omission).
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if not schedule:
        raise ValueError("empty schedule")
    work: "queue.Queue[Optional[ScheduleEntry]]" = queue.Queue()
    latencies: List[List[float]] = [[] for _ in range(clients)]
    failures = [0] * clients
    clock = time.perf_counter
    t0 = clock()

    def serve(slot: int) -> None:
        client: Optional[ServeClient] = None
        try:
            client = ServeClient.open(address, timeout=timeout)
            while True:
                item = work.get()
                if item is None:
                    return
                sched_t, u, v = item
                try:
                    client.query(u, v)
                except ProtocolError:
                    failures[slot] += 1
                    continue
                except (ConnectionClosed, OSError):
                    failures[slot] += 1
                    client.close()
                    client = ServeClient.open(address, timeout=timeout)
                    continue
                latencies[slot].append(clock() - (t0 + sched_t))
        finally:
            if client is not None:
                client.close()

    threads = [
        threading.Thread(target=serve, args=(slot,), daemon=True)
        for slot in range(clients)
    ]
    for t in threads:
        t.start()
    for entry in schedule:
        delay = (t0 + entry[0]) - clock()
        if delay > 0:
            time.sleep(delay)
        work.put(entry)
    for _ in threads:
        work.put(None)
    for t in threads:
        t.join()
    wall = clock() - t0
    flat = [lat for per in latencies for lat in per]
    p50, p99, p999 = _percentiles(flat)
    horizon = schedule[-1][0]
    offered = len(schedule) / horizon if horizon > 0 else 0.0
    return LevelResult(
        mode="open",
        level=round(offered),
        requests=len(schedule),
        failures=sum(failures),
        duration_s=wall,
        p50_ms=p50,
        p99_ms=p99,
        p999_ms=p999,
        qps=len(flat) / wall if wall > 0 else 0.0,
        offered_rate=offered,
        digest=schedule_digest(schedule),
    )


def drive_load(
    address: Address,
    pairs: Sequence[LabelPair],
    mode: str,
    levels: Sequence[float],
    arrivals: str = "poisson",
    duration: float = 5.0,
    repeats: int = 1,
    clients: int = 8,
    seed: int = 0,
    timeout: float = 30.0,
    workers: Optional[int] = None,
) -> Dict[str, object]:
    """Run every level of one load workload; returns the ``load`` block.

    Closed mode reads ``levels`` as concurrencies; open mode as offered
    rates (each level's schedule is seeded with ``seed + level index``
    so levels differ but runs reproduce).

    Raises
    ------
    ValueError
        On an unknown mode/arrival process or an empty level list.
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; choose from {MODES}")
    if not levels:
        raise ValueError("at least one load level is required")
    results: List[LevelResult] = []
    for index, level in enumerate(levels):
        if mode == "closed":
            result, _ = run_closed_level(
                address, pairs, int(level), repeats=repeats, timeout=timeout
            )
        else:
            schedule = request_schedule(
                pairs, arrivals, float(level), duration, seed + index
            )
            result = run_open_level(
                address, schedule, clients=clients, timeout=timeout
            )
            # label by the requested rate — the sampled offered rate
            # wobbles with the seed and would destabilize level keys
            result.level = float(level)
        results.append(result)
    block: Dict[str, object] = {
        "mode": mode,
        "pairs": len(pairs),
        "seed": seed,
        "levels": [r.to_dict() for r in results],
    }
    if mode == "open":
        block["arrivals"] = arrivals
        block["duration_s"] = duration
        block["clients"] = clients
    else:
        block["repeats"] = repeats
    if workers is not None:
        block["workers"] = workers
    return block


# ----------------------------------------------------------------------
# Structure construction + daemon launching (the CLI's plumbing)
# ----------------------------------------------------------------------
def build_profile_structure(
    profile: Profile, tier: str
) -> Tuple[WeightedGraph, WeightedGraph, float, float]:
    """Build ``profile``'s graph and servable structure at ``tier``.

    Returns ``(graph, structure, generation_seconds, construction_seconds)``.
    The same seeded path ``run_profile`` takes, so a daemon launched
    from a profile serves exactly the structure a load generator
    resolving the same profile computes its query mix against.

    Raises
    ------
    ValueError
        When the profile's algorithm produces no servable structure.
    """
    from repro.harness.runner import ALGORITHMS, STRUCTURE_EXTRACTORS

    if profile.algorithm not in STRUCTURE_EXTRACTORS:
        raise ValueError(
            f"profile {profile.name!r} ({profile.algorithm}) produces no "
            f"servable structure"
        )
    clock = time.perf_counter
    t0 = clock()
    graph = profile.build_graph(tier)
    generation_seconds = clock() - t0
    build, _certify = ALGORITHMS[profile.algorithm]
    params = profile.algo_params(tier)
    t0 = clock()
    built = build(graph, params, random.Random(profile.seed))
    construction_seconds = clock() - t0
    structure = STRUCTURE_EXTRACTORS[profile.algorithm](built[0])
    return graph, structure, generation_seconds, construction_seconds


def launch_daemon(
    args: Sequence[str], ready_timeout: float = 120.0
) -> Tuple[subprocess.Popen, Address]:
    """Start ``repro serve`` as a subprocess and wait for its READY line.

    ``args`` are the ``repro serve`` arguments (after the subcommand).
    Returns the process and the parsed address.  The daemon runs in its
    own interpreter so load measurements never share a GIL with it.

    Raises
    ------
    RuntimeError
        When the daemon exits or fails to print READY in time.
    """
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONUNBUFFERED": "1"},
    )
    deadline = time.monotonic() + ready_timeout
    lines: List[str] = []
    assert proc.stdout is not None
    while True:
        if time.monotonic() > deadline:
            stop_daemon(proc)
            raise RuntimeError(
                "daemon did not print READY in time; output so far:\n"
                + "".join(lines)
            )
        line = proc.stdout.readline()
        if not line:
            proc.wait()
            raise RuntimeError(
                f"daemon exited with {proc.returncode} before READY:\n"
                + "".join(lines)
            )
        lines.append(line)
        if line.startswith("READY "):
            fields = dict(
                part.split("=", 1) for part in line.split()[1:] if "=" in part
            )
            return proc, address_of(fields["address"])


def stop_daemon(proc: subprocess.Popen, timeout: float = 10.0) -> int:
    """Stop a daemon started by :func:`launch_daemon`; returns its exit code.

    Tries SIGTERM (the daemon's graceful path) first, then SIGKILL —
    the kill-on-failure teardown CI relies on.
    """
    if proc.poll() is None:
        proc.terminate()
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=timeout)
    if proc.stdout is not None:
        proc.stdout.close()
    return int(proc.returncode if proc.returncode is not None else -1)
