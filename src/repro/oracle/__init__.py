"""Approximate-distance serving layer (preprocess once, query many).

* :mod:`repro.oracle.landmarks` — seeded landmark selection (far-point
  sampling / degree) over a frozen CSR structure;
* :mod:`repro.oracle.oracle` — :class:`DistanceOracle`: exact-on-structure
  distance queries via bidirectional ALT-pruned Dijkstra, batched over
  version-stamped scratch arrays, behind an LRU result cache, and
  picklable so preprocessing and serving can live in different
  processes.

Entry points: :func:`build_oracle` / :meth:`DistanceOracle.build`, the
``repro oracle build`` / ``repro oracle query`` CLI, and the harness's
query-workload suite (``python -m repro bench --suite queries``).
"""

from repro.oracle.landmarks import STRATEGIES, select_landmarks
from repro.oracle.oracle import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_LANDMARKS,
    DistanceOracle,
    build_oracle,
)

__all__ = [
    "STRATEGIES",
    "select_landmarks",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_LANDMARKS",
    "DistanceOracle",
    "build_oracle",
]
