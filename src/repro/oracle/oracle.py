"""Preprocess-once / query-many approximate-distance serving layer.

The paper's objects — spanners, SLTs, hopset-augmented graphs — exist so
that distance queries can be answered *cheaply*: the expensive guarantee
(stretch ``t`` vs the host graph G) is baked into the structure H at
construction time, after which ``d_H`` is a ``t``-approximation of
``d_G`` forever.  :class:`DistanceOracle` is the serving half of that
bargain.  Build it once over a constructed structure and every query is
answered **exactly on the structure** (``d_H``, to float round-off), so
the answer inherits the structure's paper-certified stretch bound
against G — the oracle adds speed, never error.

Preprocessing freezes the structure to its CSR view, selects seeded
landmarks (:mod:`repro.oracle.landmarks`) and runs one full Dijkstra per
landmark; queries then run **bidirectional Dijkstra with ALT pruning**
over the CSR arrays:

* the landmark potentials give an upper bound ``min_l d(l,u) + d(l,v)``
  and a lower bound ``max_l |d(l,u) − d(l,v)|`` before any search; when
  they pinch (e.g. an endpoint is a landmark) the query is answered with
  no search at all;
* otherwise two Dijkstra frontiers meet in the middle, and a frontier
  vertex whose label plus its landmark lower bound to the far endpoint
  cannot beat the best path found so far is never expanded;
* scratch arrays are version-stamped (the certify engine's trick), so a
  batch of queries — :meth:`DistanceOracle.query_many` — reuses them
  with no per-query O(n) clearing;
* an LRU cache with hit/miss counters short-circuits repeated queries —
  the serving regime the ROADMAP's query traffic implies;
* the whole oracle pickles (scratch and cached answers are dropped, the
  precomputed potentials travel), so a structure can be preprocessed in
  one process and served from another.
"""

from __future__ import annotations

import heapq
import time
from array import array
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graphs.csr import CSRGraph
from repro.graphs.weighted_graph import Vertex, WeightedGraph
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.oracle.landmarks import STRATEGIES, landmarks_with_potentials

INF = float("inf")

#: default number of landmarks (diminishing returns beyond ~16 on the
#: structure sizes this repository serves)
DEFAULT_LANDMARKS = 8
#: default LRU capacity (answers are 3 machine words each)
DEFAULT_CACHE_SIZE = 4096


def _components(csr: CSRGraph) -> List[int]:
    """Component id per dense index (a query across components is ``inf``)."""
    n = csr.n
    indptr, indices = csr.indptr, csr.indices
    comp = [-1] * n
    cid = 0
    for root in range(n):
        if comp[root] >= 0:
            continue
        comp[root] = cid
        frontier = [root]
        while frontier:
            nxt = []
            for u in frontier:
                for s in range(indptr[u], indptr[u + 1]):
                    v = indices[s]
                    if comp[v] < 0:
                        comp[v] = cid
                        nxt.append(v)
            frontier = nxt
        cid += 1
    return comp


class _Scratch:
    """Version-stamped per-process search state, shared across a batch.

    ``dist_f[v]`` / ``dist_b[v]`` are live only when the matching stamp
    equals the current query's version — consecutive queries reuse the
    arrays without clearing them (the certify engine's batching trick).
    Never pickled; rebuilt lazily after unpickling.
    """

    __slots__ = ("dist_f", "stamp_f", "done_f", "dist_b", "stamp_b", "done_b",
                 "version")

    def __init__(self, n: int) -> None:
        self.dist_f = [0.0] * n
        self.stamp_f = [0] * n
        self.done_f = [0] * n
        self.dist_b = [0.0] * n
        self.stamp_b = [0] * n
        self.done_b = [0] * n
        self.version = 0


class DistanceOracle:
    """Exact-on-structure distance oracle with landmark-ALT queries.

    Build via :meth:`build` (or the :func:`build_oracle` convenience).
    Queries take vertex *labels* of the served structure and return
    ``d_H`` — ``inf`` across components, 0 on ``u == v``.  Because the
    answers are exact on H, a structure with paper guarantee
    ``d_H <= t · d_G`` makes every answer a ``t``-approximate distance
    of the host graph.
    """

    def __init__(
        self,
        csr: CSRGraph,
        landmark_indices: Sequence[int],
        potentials: Sequence[Sequence[float]],
        components: Sequence[int],
        strategy: str,
        seed: int,
        cache_size: int = DEFAULT_CACHE_SIZE,
        copy: bool = True,
    ) -> None:
        # copy=False serves potentials/components in place — the
        # shared-memory worker path (repro.serve.shm), where the rows
        # are read-only memoryviews into one segment shared by every
        # worker and copying would defeat the sharing.
        self.csr = csr
        self.landmark_indices = list(landmark_indices)
        self.potentials: List[Sequence[float]] = (
            [list(p) for p in potentials] if copy else list(potentials)
        )
        self.components = components
        self.strategy = strategy
        self.seed = seed
        self.cache_size = cache_size
        self._cache: "OrderedDict[Tuple[int, int], float]" = OrderedDict()
        # Per-oracle registry, not the process-wide one: two live oracles
        # must not pool their counters, and reset_cache() must not clobber
        # anyone else's metrics.  The harness folds this into the global
        # registry after serving a workload (see harness/queries.py).
        self.metrics = MetricsRegistry()
        self._hits = self.metrics.counter("oracle.cache.hits")
        self._misses = self.metrics.counter("oracle.cache.misses")
        self._pinched = self.metrics.counter("oracle.query.pinched")
        self._searches = self.metrics.counter("oracle.query.searched")
        self._latency = self.metrics.histogram("oracle.query.latency_ms")
        self._scratch: Optional[_Scratch] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        structure: "WeightedGraph | CSRGraph",
        landmarks: int = DEFAULT_LANDMARKS,
        strategy: str = "far",
        seed: int = 0,
        cache_size: int = DEFAULT_CACHE_SIZE,
        kernel: str = "python",
    ) -> "DistanceOracle":
        """Preprocess ``structure`` (spanner / SLT / any weighted graph).

        A :class:`WeightedGraph` is frozen to its cached CSR view; the
        structure is never mutated and never copied beyond that.

        ``kernel`` selects the SSSP backend the landmark potentials are
        computed with (:mod:`repro.kernels`; ``"numpy"`` batches the
        ``"degree"`` strategy's Dijkstras into one matrix pass).  The
        resulting oracle is kernel-independent: same landmarks, same
        potentials to 1e-9, same answers.

        Raises
        ------
        ValueError
            On an empty structure, an unknown strategy, a non-positive
            landmark count, or a non-positive cache size.
        """
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown landmark strategy {strategy!r}; choose from {STRATEGIES}"
            )
        csr = structure.freeze() if isinstance(structure, WeightedGraph) else structure
        if csr.n == 0:
            raise ValueError("cannot build an oracle over an empty structure")
        # far-sampling's selection Dijkstras double as the potentials,
        # so each landmark's SSSP runs exactly once
        chosen, potentials = landmarks_with_potentials(
            csr, landmarks, strategy=strategy, seed=seed, kernel=kernel
        )
        return cls(
            csr, chosen, potentials, _components(csr), strategy, seed,
            cache_size=cache_size,
        )

    @property
    def landmarks(self) -> List[Vertex]:
        """The landmark vertices, as structure labels."""
        return [self.csr.verts[i] for i in self.landmark_indices]

    @property
    def n(self) -> int:
        """Number of vertices served."""
        return self.csr.n

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _index(self, v: Vertex) -> int:
        try:
            return self.csr.index_of(v)
        except (KeyError, TypeError):
            raise ValueError(
                f"{v!r} is not a vertex of the served structure"
            ) from None

    def _bounds(self, s: int, t: int) -> Tuple[float, float]:
        """Landmark (lower, upper) bounds on ``d(s, t)``.

        Landmarks in other components (potential ``inf`` at either
        endpoint) prove nothing about the pair and are skipped; the
        component test has already handled cross-component pairs.
        """
        lb, ub = 0.0, INF
        for pot in self.potentials:
            ps, pt = pot[s], pot[t]
            if ps == INF or pt == INF:
                continue
            diff = ps - pt if ps >= pt else pt - ps
            if diff > lb:
                lb = diff
            tot = ps + pt
            if tot < ub:
                ub = tot
        return lb, ub

    def _search(self, s: int, t: int, lb0: float, mu: float) -> float:
        """Bidirectional ALT-pruned Dijkstra; exact ``d(s, t)``.

        ``mu`` starts at the landmark upper bound and only improves as
        the frontiers meet; the loop stops when the two heap tops prove
        no remaining path beats it.  A settled vertex whose label plus
        its landmark lower bound to the far endpoint reaches ``mu`` is
        never expanded (ALT pruning keeps exactness: such a vertex
        cannot lie on a path shorter than an already-found one).
        """
        csr = self.csr
        indptr, indices, weights = csr.indptr, csr.indices, csr.weights
        potentials = self.potentials
        scratch = self._scratch
        if scratch is None or len(scratch.dist_f) != csr.n:
            scratch = self._scratch = _Scratch(csr.n)
        scratch.version += 1
        version = scratch.version
        dist_f, stamp_f, done_f = scratch.dist_f, scratch.stamp_f, scratch.done_f
        dist_b, stamp_b, done_b = scratch.dist_b, scratch.stamp_b, scratch.done_b
        dist_f[s] = 0.0
        stamp_f[s] = version
        dist_b[t] = 0.0
        stamp_b[t] = version
        heap_f: List[Tuple[float, int]] = [(0.0, s)]
        heap_b: List[Tuple[float, int]] = [(0.0, t)]
        push, pop = heapq.heappush, heapq.heappop
        while heap_f and heap_b:
            if heap_f[0][0] + heap_b[0][0] >= mu:
                break  # no undiscovered path can beat the best one found
            forward = heap_f[0][0] <= heap_b[0][0]
            if forward:
                heap, dist, stamp, done = heap_f, dist_f, stamp_f, done_f
                odist, ostamp, far = dist_b, stamp_b, t
            else:
                heap, dist, stamp, done = heap_b, dist_b, stamp_b, done_b
                odist, ostamp, far = dist_f, stamp_f, s
            d, u = pop(heap)
            if done[u] == version or d > dist[u]:
                continue
            done[u] = version
            # ALT pruning: d + lb(u, far endpoint) >= mu => expanding u
            # cannot improve on the path already in hand
            prune = 0.0
            for pot in potentials:
                pu, pf = pot[u], pot[far]
                if pu == INF or pf == INF:
                    continue
                diff = pu - pf if pu >= pf else pf - pu
                if diff > prune:
                    prune = diff
                    if d + prune >= mu:
                        break
            if d + prune >= mu:
                continue
            for slot in range(indptr[u], indptr[u + 1]):
                v = indices[slot]
                nd = d + weights[slot]
                if nd >= mu:
                    continue
                if stamp[v] != version or nd < dist[v]:
                    stamp[v] = version
                    dist[v] = nd
                    push(heap, (nd, v))
                    if ostamp[v] == version:
                        total = nd + odist[v]
                        if total < mu:
                            mu = total
        return mu

    def _answer(self, s: int, t: int) -> float:
        """Uncached exact distance between dense indices ``s`` and ``t``."""
        if s == t:
            return 0.0
        if self.components[s] != self.components[t]:
            return INF
        lb, ub = self._bounds(s, t)
        if ub <= lb:
            # the landmark sandwich pinches (e.g. an endpoint is a
            # landmark, or a landmark lies on a shortest path): exact
            self._pinched.inc()
            return ub
        self._searches.inc()
        return self._search(s, t, lb, ub)

    def _query(self, u: Vertex, v: Vertex) -> float:
        s, t = self._index(u), self._index(v)
        key = (s, t) if s <= t else (t, s)
        cache = self._cache
        hit = cache.get(key)
        if hit is not None:
            self._hits.inc()
            cache.move_to_end(key)
            return hit
        self._misses.inc()
        answer = self._answer(s, t)
        cache[key] = answer
        if len(cache) > self.cache_size:
            cache.popitem(last=False)
        return answer

    def query(self, u: Vertex, v: Vertex) -> float:
        """Exact structure distance ``d_H(u, v)`` (``inf`` across components).

        While tracing is enabled, each query's wall time additionally
        lands in the ``oracle.query.latency_ms`` histogram; the timing
        is gated so the disabled path pays no clock reads.

        Raises
        ------
        ValueError
            If either endpoint is not a vertex of the served structure.
        """
        if not obs_trace.enabled():
            return self._query(u, v)
        t0 = time.perf_counter()
        answer = self._query(u, v)
        self._latency.observe((time.perf_counter() - t0) * 1e3)
        return answer

    def query_many(
        self,
        pairs: Iterable[Tuple[Vertex, Vertex]],
        kernel: Optional[str] = None,
    ) -> List[float]:
        """Batch :meth:`query`: one answer per ``(u, v)`` pair, in order.

        The default path (``kernel=None``) loops :meth:`query`, sharing
        the version-stamped scratch arrays and the LRU cache across the
        batch.  Passing a kernel name (``"numpy"``/``"auto"``/
        ``"python"``) opts into *batched* serving instead: the pairs are
        grouped by source, one batched SSSP
        (:func:`repro.kernels.sssp_matrix`) settles every distinct
        source's full distance row, and each pair reads its answer out
        of its row — same exact-on-structure answers, best when many
        pairs share few sources (it bypasses the per-query ALT search,
        the LRU cache and its hit/miss counters).
        """
        if kernel is None:
            return [self.query(u, v) for u, v in pairs]
        from repro.kernels import sssp_matrix

        indexed = [(self._index(u), self._index(v)) for u, v in pairs]
        order = sorted({s for s, _ in indexed})
        csr = self.csr
        rows = sssp_matrix(
            csr.indptr, csr.indices, csr.weights, order, kernel=kernel
        )
        row_of = {s: rows[i] for i, s in enumerate(order)}
        return [row_of[s][t] for s, t in indexed]

    def k_nearest(self, v: Vertex, k: int) -> List[Tuple[Vertex, float]]:
        """The ``k`` nearest other vertices of ``v`` on the structure.

        Returned as ``(vertex, distance)`` sorted by distance (ties by
        dense index), computed by a Dijkstra truncated after ``k``
        settles — unreachable vertices never qualify.

        Raises
        ------
        ValueError
            On ``k < 1`` or an unknown vertex.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        src = self._index(v)
        csr = self.csr
        indptr, indices, weights = csr.indptr, csr.indices, csr.weights
        dist: Dict[int, float] = {src: 0.0}
        heap: List[Tuple[float, int]] = [(0.0, src)]
        push, pop = heapq.heappush, heapq.heappop
        settled: List[Tuple[Vertex, float]] = []
        seen = set()
        while heap and len(settled) < k + 1:
            d, u = pop(heap)
            if u in seen or d > dist[u]:
                continue
            seen.add(u)
            settled.append((csr.verts[u], d))
            for slot in range(indptr[u], indptr[u + 1]):
                w = indices[slot]
                nd = d + weights[slot]
                if nd < dist.get(w, INF):
                    dist[w] = nd
                    push(heap, (nd, w))
        return [(vertex, d) for vertex, d in settled if vertex != v][:k]

    # ------------------------------------------------------------------
    # Cache accounting
    # ------------------------------------------------------------------
    # The four counters live in the per-oracle metrics registry (the
    # single vocabulary of repro.obs); these properties keep the original
    # int attributes readable.
    @property
    def hits(self) -> int:
        """Queries answered from the LRU cache."""
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        """Queries that had to be computed."""
        return int(self._misses.value)

    @property
    def pinched(self) -> int:
        """Queries answered by landmark bounds alone."""
        return int(self._pinched.value)

    @property
    def searches(self) -> int:
        """Queries that ran the bidirectional search."""
        return int(self._searches.value)

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss counters plus current occupancy and capacity."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "pinched": self.pinched,
            "searches": self.searches,
            "size": len(self._cache),
            "maxsize": self.cache_size,
        }

    def reset_cache(self) -> None:
        """Drop cached answers and zero the metrics (capacity kept)."""
        self._cache.clear()
        self.metrics.reset()

    # ------------------------------------------------------------------
    # Pickling: potentials travel, per-process state does not
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        # materialise: a shared-memory-backed oracle (copy=False views
        # over a segment) must pickle into a self-contained one
        csr = self.csr
        if isinstance(csr.indptr, memoryview):
            csr = CSRGraph(
                list(csr.indptr),
                list(csr.indices),
                array("d", csr.weights),
                list(csr.verts),
            )
        return {
            "csr": csr,
            "landmark_indices": self.landmark_indices,
            "potentials": [list(p) for p in self.potentials],
            "components": list(self.components),
            "strategy": self.strategy,
            "seed": self.seed,
            "cache_size": self.cache_size,
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__init__(
            state["csr"],
            state["landmark_indices"],
            state["potentials"],
            state["components"],
            state["strategy"],
            state["seed"],
            cache_size=state["cache_size"],
        )

    def __repr__(self) -> str:
        return (
            f"DistanceOracle(n={self.csr.n}, m={self.csr.m}, "
            f"landmarks={len(self.landmark_indices)}, "
            f"strategy={self.strategy!r})"
        )


def build_oracle(
    structure: "WeightedGraph | CSRGraph",
    landmarks: int = DEFAULT_LANDMARKS,
    strategy: str = "far",
    seed: int = 0,
    cache_size: int = DEFAULT_CACHE_SIZE,
    kernel: str = "python",
) -> DistanceOracle:
    """Convenience wrapper for :meth:`DistanceOracle.build`."""
    return DistanceOracle.build(
        structure, landmarks=landmarks, strategy=strategy, seed=seed,
        cache_size=cache_size, kernel=kernel,
    )
