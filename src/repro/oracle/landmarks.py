"""Seeded landmark selection for the ALT distance oracle.

A landmark is a vertex whose exact distance to *every* vertex of the
served structure is precomputed at build time; the triangle inequality
then turns each landmark ``l`` into a query-time certificate

* lower bound — ``|d(l, u) − d(l, v)| <= d(u, v)``,
* upper bound — ``d(u, v) <= d(l, u) + d(l, v)``,

which is what lets the oracle's bidirectional Dijkstra prune whole
subtrees of the search (the ALT technique of Goldberg–Harrelson).  The
bounds are only as tight as the landmarks are well spread, so selection
matters; two seeded strategies are provided:

``"far"``
    Farthest-point sampling: start from the seeded RNG's pick, then
    repeatedly add the vertex maximizing the distance to the chosen set
    (one multi-source Dijkstra per round).  Unreachable vertices sort as
    infinitely far, so disconnected structures get one landmark per
    component before any component gets its second — exactly what the
    oracle's connectivity test needs.
``"degree"``
    Highest-degree vertices (seeded RNG breaks ties).  Cheaper to select
    and a good fit for hub-and-spoke graphs where shortest paths funnel
    through high-degree vertices anyway.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, List, Optional, Tuple

from repro.graphs.csr import CSRGraph

INF = float("inf")

#: The selection strategies :func:`select_landmarks` accepts.
STRATEGIES = ("far", "degree")


def _sssp(csr: CSRGraph, src: int) -> List[float]:
    """Plain full Dijkstra from dense index ``src`` (one potential array)."""
    n = csr.n
    indptr, indices, weights = csr.indptr, csr.indices, csr.weights
    dist = [INF] * n
    dist[src] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, src)]
    push, pop = heapq.heappush, heapq.heappop
    while heap:
        d, u = pop(heap)
        if d > dist[u]:
            continue
        for s in range(indptr[u], indptr[u + 1]):
            v = indices[s]
            nd = d + weights[s]
            if nd < dist[v]:
                dist[v] = nd
                push(heap, (nd, v))
    return dist


def _far_sampling(
    csr: CSRGraph,
    count: int,
    rng: random.Random,
    run_sssp: Optional[Callable[[CSRGraph, int], List[float]]] = None,
) -> Tuple[List[int], List[List[float]]]:
    """Farthest-point sampling over the structure's own metric.

    Returns the chosen landmarks *and* each one's full distance array —
    selection needs exactly the Dijkstras the oracle's ALT potentials
    are made of, so the caller reuses them instead of recomputing.
    ``run_sssp`` swaps the per-round SSSP (the kernels dispatch path);
    the default is the local heap Dijkstra.
    """
    n = csr.n
    chosen = [rng.randrange(n)]
    potentials: List[List[float]] = []
    # dist-to-chosen-set, maintained incrementally: adding a landmark is
    # one Dijkstra from it, min-merged into the running array
    best = [INF] * n
    while True:
        dist = (run_sssp or _sssp)(csr, chosen[-1])
        potentials.append(dist)
        for v in range(n):
            if dist[v] < best[v]:
                best[v] = dist[v]
        if len(chosen) == count:
            return chosen, potentials
        # the next landmark is the vertex farthest from the chosen set;
        # max() prefers the lowest index among ties, keeping the pick
        # deterministic for a fixed seed
        far = max(range(n), key=lambda v: (best[v], -v))
        if best[far] == 0.0:
            return chosen, potentials  # every vertex is already a landmark
        chosen.append(far)


def _by_degree(csr: CSRGraph, count: int, rng: random.Random) -> List[int]:
    """Top-degree vertices; the seeded RNG shuffles equal-degree runs."""
    order = list(range(csr.n))
    rng.shuffle(order)  # randomize ties before the stable sort below
    order.sort(key=csr.degree_idx, reverse=True)
    return order[:count]


def select_landmarks(
    csr: CSRGraph,
    count: int,
    strategy: str = "far",
    seed: int = 0,
) -> List[int]:
    """Pick ``count`` landmark vertices (dense indices) of ``csr``.

    The selection is deterministic for a fixed ``(strategy, seed)`` pair.
    ``count`` is clamped to ``n``; far-sampling may return fewer when the
    structure runs out of distinct points (every vertex already chosen).

    Raises
    ------
    ValueError
        On an unknown strategy or a non-positive count.
    """
    return landmarks_with_potentials(csr, count, strategy, seed)[0]


def landmarks_with_potentials(
    csr: CSRGraph,
    count: int,
    strategy: str = "far",
    seed: int = 0,
    kernel: str = "python",
) -> Tuple[List[int], List[List[float]]]:
    """:func:`select_landmarks` plus each landmark's distance array.

    The potentials are exactly one full Dijkstra per landmark; for the
    ``"far"`` strategy those Dijkstras already ran during selection and
    are returned rather than recomputed, so an oracle build pays for
    each landmark's SSSP once.

    ``kernel`` selects the SSSP backend (:mod:`repro.kernels`).  The
    selection itself is backend-independent — distances agree to 1e-9,
    and both the ``"far"`` argmax and the ``"degree"`` ordering depend
    only on distances/degrees — so a fixed ``(strategy, seed)`` picks
    the same landmarks on every kernel.  Under ``"numpy"`` the
    ``"degree"`` strategy computes all its potentials as one batched
    matrix SSSP; ``"far"`` stays one (vectorized) SSSP per round, since
    each round's source depends on the previous round's distances.

    Raises
    ------
    ValueError
        On an unknown strategy or a non-positive count.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown landmark strategy {strategy!r}; choose from {STRATEGIES}"
        )
    if count < 1:
        raise ValueError(f"landmark count must be >= 1, got {count}")
    if csr.n == 0:
        return [], []
    count = min(count, csr.n)
    rng = random.Random(seed)
    # resolve once: an explicit "numpy" on a numpy-less host must raise
    # here, not silently run the python loop
    from repro.kernels import resolve_kernel

    backend = resolve_kernel(kernel)
    if strategy == "degree":
        chosen = _by_degree(csr, count, rng)
        if backend == "numpy":
            from repro.kernels import sssp_matrix

            return chosen, sssp_matrix(
                csr.indptr, csr.indices, csr.weights, chosen, kernel=backend
            )
        return chosen, [_sssp(csr, i) for i in chosen]
    if backend == "numpy":
        from repro.kernels import sssp as kernel_sssp

        return _far_sampling(
            csr, count, rng,
            run_sssp=lambda c, s: kernel_sssp(
                c.indptr, c.indices, c.weights, [s], kernel="numpy"
            )[0],
        )
    return _far_sampling(csr, count, rng)
