"""Blocking client for the serving daemon's frame protocol.

One :class:`ServeClient` wraps one socket; requests are strictly
sequential per client (one frame out, one frame in), which is exactly
the unit the load generator multiplies — concurrency comes from many
clients, not from pipelining one.  Errors surface as
:class:`~repro.serve.protocol.ProtocolError` carrying the daemon's
typed code, so callers can distinguish a crashed worker
(``worker_crashed``, retryable) from a bad query (``bad_request``,
not).
"""

from __future__ import annotations

from types import TracebackType
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from repro.serve import protocol
from repro.serve.protocol import Address


class ServeClient:
    """A connected client of one serving daemon.

    Usable as a context manager::

        with ServeClient.open(("127.0.0.1", port)) as client:
            d = client.query("0", "99")
    """

    def __init__(
        self,
        sock: Any,
        max_frame: int = protocol.DEFAULT_MAX_FRAME,
    ) -> None:
        self._sock = sock
        self._max_frame = max_frame

    @classmethod
    def open(
        cls,
        address: Address,
        timeout: Optional[float] = 30.0,
        max_frame: int = protocol.DEFAULT_MAX_FRAME,
    ) -> "ServeClient":
        """Connect to a daemon at a TCP ``(host, port)`` or unix path."""
        return cls(protocol.connect(address, timeout=timeout), max_frame=max_frame)

    def close(self) -> None:
        """Close the underlying socket."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - double close
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    # -- raw request ---------------------------------------------------
    def call(self, op: str, **args: Any) -> Any:
        """Send one request and return the unwrapped result.

        Raises
        ------
        ProtocolError
            With the daemon's typed code on any served error.
        ConnectionClosed
            When the daemon closes the connection.
        """
        payload: Dict[str, Any] = {"op": op}
        payload.update(args)
        protocol.write_frame(self._sock, payload, max_frame=self._max_frame)
        return protocol.result_of(
            protocol.read_frame(self._sock, max_frame=self._max_frame)
        )

    # -- typed convenience wrappers ------------------------------------
    def ping(self) -> bool:
        """True iff the daemon answers."""
        return bool(self.call("ping")["pong"])

    def info(self) -> Dict[str, Any]:
        """Daemon/structure metadata (n, m, workers, payload bytes...)."""
        result = self.call("info")
        assert isinstance(result, dict)
        return result

    def vertices(self, limit: int = 100, offset: int = 0) -> List[str]:
        """Up to ``limit`` vertex labels starting at ``offset``."""
        result = self.call("vertices", limit=limit, offset=offset)
        return list(result["vertices"])

    def query(self, u: str, v: str) -> float:
        """Exact structure distance between labels ``u`` and ``v``."""
        return float(self.call("query", u=u, v=v)["distance"])

    def query_many(self, pairs: Sequence[Tuple[str, str]]) -> List[float]:
        """Batched :meth:`query`, one answer per pair in order."""
        result = self.call(
            "query_many", pairs=[[u, v] for u, v in pairs]
        )
        return [float(d) for d in result["distances"]]

    def k_nearest(self, v: str, k: int) -> List[Tuple[str, float]]:
        """The ``k`` nearest other vertices of ``v``."""
        result = self.call("k_nearest", v=v, k=k)
        return [(str(u), float(d)) for u, d in result["nearest"]]

    def stats(self) -> Dict[str, Any]:
        """Merged daemon metrics snapshot plus per-worker cache info."""
        result = self.call("stats")
        assert isinstance(result, dict)
        return result

    def shutdown(self) -> None:
        """Ask the daemon to stop (it answers before stopping)."""
        self.call("shutdown")

    def crash_worker(self, worker: Optional[int] = None) -> int:
        """Kill one worker (crash-isolation test endpoint); returns its id."""
        args: Dict[str, Any] = {}
        if worker is not None:
            args["worker"] = worker
        return int(self.call("crash_worker", **args)["killed"])
