"""Multi-worker shared-memory serving of built distance oracles.

The serving layer's concurrent half: :mod:`repro.serve.shm` publishes a
built :class:`~repro.oracle.oracle.DistanceOracle` into one
shared-memory segment, :mod:`repro.serve.daemon` runs N worker
processes over it behind a length-prefixed socket protocol
(:mod:`repro.serve.protocol`), and :mod:`repro.serve.client` is the
blocking client the load generator multiplies.  See the DESIGN.md
serving-daemon section for the shared-memory layout, the framing and
the failure semantics.
"""

from repro.serve.client import ServeClient
from repro.serve.daemon import DEFAULT_WORKERS, Server, worker_main
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME,
    ERROR_CODES,
    OPS,
    Address,
    ConnectionClosed,
    ProtocolError,
    address_of,
)
from repro.serve.shm import (
    AttachedOracle,
    OracleShare,
    attach_oracle,
    publish_oracle,
)

__all__ = [
    "DEFAULT_MAX_FRAME",
    "DEFAULT_WORKERS",
    "ERROR_CODES",
    "OPS",
    "Address",
    "AttachedOracle",
    "ConnectionClosed",
    "OracleShare",
    "ProtocolError",
    "ServeClient",
    "Server",
    "address_of",
    "attach_oracle",
    "publish_oracle",
    "worker_main",
]
