"""Wire protocol of the serving daemon: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Requests are objects with an ``op`` field plus
op-specific arguments; responses are ``{"ok": true, "result": ...}`` or
``{"ok": false, "error": {"code": ..., "message": ...}}``.  Vertex
labels travel as strings (``str(vertex)``, the same resolution rule the
``repro oracle query`` CLI uses) and distances as JSON numbers —
``inf`` rides on the json module's ``Infinity`` extension, which both
ends of this protocol speak.

Failure semantics are *typed*, never a traceback on the wire:

* a frame whose JSON does not parse, is not an object, or lacks a
  string ``op`` is answered with ``malformed_frame`` and the connection
  stays usable (the framing itself was intact);
* a length prefix beyond ``max_frame`` is answered with
  ``oversized_frame`` and the connection is then closed — the stream
  position can no longer be trusted;
* an unknown ``op`` is ``unknown_op``; missing/ill-typed arguments are
  ``bad_request``; a label that is not a vertex of the served structure
  is ``unknown_vertex``;
* a request in flight on a worker that dies is answered with
  ``worker_crashed``; requests caught by a shutdown are answered with
  ``shutting_down``.

Every error code doubles as a daemon metrics counter
(``serve.errors.<code>``), so the failure taxonomy is observable with
the same vocabulary it is reported with.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple, Union

#: a TCP ``(host, port)`` pair or a unix-domain socket path
Address = Union[Tuple[str, int], str]

#: frames larger than this are rejected with ``oversized_frame``
DEFAULT_MAX_FRAME = 1 << 20

#: 4-byte big-endian unsigned frame length
_LEN = struct.Struct("!I")

#: the typed protocol error taxonomy (codes double as metric suffixes,
#: so they follow the ``[a-z0-9_]`` metric-segment alphabet)
ERROR_CODES = (
    "malformed_frame",
    "oversized_frame",
    "unknown_op",
    "bad_request",
    "unknown_vertex",
    "worker_crashed",
    "shutting_down",
    "internal",
)

#: request operations the daemon understands
OPS = (
    "ping", "info", "vertices", "stats", "query", "query_many",
    "k_nearest", "crash_worker", "shutdown",
)


class ProtocolError(Exception):
    """A typed protocol failure (``code`` is one of :data:`ERROR_CODES`)."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message


class ConnectionClosed(Exception):
    """The peer closed the connection (mid-frame iff ``dirty``)."""

    def __init__(self, dirty: bool) -> None:
        super().__init__(
            "connection closed mid-frame" if dirty else "connection closed"
        )
        self.dirty = dirty


def encode_frame(payload: Dict[str, Any], max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """One wire frame for ``payload`` (length prefix + JSON body).

    Raises
    ------
    ProtocolError
        (``oversized_frame``) when the encoded body exceeds ``max_frame``.
    """
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > max_frame:
        raise ProtocolError(
            "oversized_frame",
            f"frame of {len(body)} bytes exceeds the {max_frame}-byte limit",
        )
    return _LEN.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    """Parse one frame body into a request/response object.

    Raises
    ------
    ProtocolError
        (``malformed_frame``) when the body is not UTF-8 JSON or not a
        JSON object.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            "malformed_frame", f"frame body does not parse as JSON: {exc}"
        ) from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            "malformed_frame",
            f"frame body must be a JSON object, got {type(payload).__name__}",
        )
    return payload


def recv_exactly(sock: socket.socket, count: int, started: bool) -> bytes:
    """Read exactly ``count`` bytes from a blocking socket.

    ``started`` states whether part of a frame was already consumed —
    it decides the ``dirty`` flag of :class:`ConnectionClosed` when the
    peer goes away.
    """
    chunks = []
    got = 0
    while got < count:
        chunk = sock.recv(count - got)
        if not chunk:
            raise ConnectionClosed(dirty=started or got > 0)
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: socket.socket, max_frame: int = DEFAULT_MAX_FRAME
) -> Dict[str, Any]:
    """Read and decode one frame from a blocking socket.

    Raises
    ------
    ConnectionClosed
        On EOF (``dirty`` when it lands mid-frame).
    ProtocolError
        ``oversized_frame`` on a length prefix beyond ``max_frame``
        (the caller must then close the connection — the stream position
        is unrecoverable), ``malformed_frame`` on an unparsable body.
    """
    header = recv_exactly(sock, _LEN.size, started=False)
    (length,) = _LEN.unpack(header)
    if length > max_frame:
        raise ProtocolError(
            "oversized_frame",
            f"frame of {length} bytes exceeds the {max_frame}-byte limit",
        )
    return decode_body(recv_exactly(sock, length, started=True))


def write_frame(
    sock: socket.socket,
    payload: Dict[str, Any],
    max_frame: int = DEFAULT_MAX_FRAME,
) -> None:
    """Encode and send one frame over a blocking socket."""
    sock.sendall(encode_frame(payload, max_frame=max_frame))


def ok_response(result: Any) -> Dict[str, Any]:
    """A success response envelope."""
    return {"ok": True, "result": result}


def error_response(code: str, message: str) -> Dict[str, Any]:
    """A typed-error response envelope (validates ``code``)."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown protocol error code {code!r}")
    return {"ok": False, "error": {"code": code, "message": message}}


def parse_request(payload: Dict[str, Any]) -> Tuple[str, Dict[str, Any]]:
    """Split a request object into ``(op, arguments)``.

    Raises
    ------
    ProtocolError
        ``malformed_frame`` when ``op`` is missing or not a string;
        ``unknown_op`` when it names no operation.
    """
    op = payload.get("op")
    if not isinstance(op, str):
        raise ProtocolError(
            "malformed_frame", "request object lacks a string 'op' field"
        )
    if op not in OPS:
        raise ProtocolError(
            "unknown_op", f"unknown op {op!r}; supported: {', '.join(OPS)}"
        )
    return op, {k: v for k, v in payload.items() if k != "op"}


def result_of(response: Dict[str, Any]) -> Any:
    """Unwrap a response envelope, raising the typed error it carries.

    Raises
    ------
    ProtocolError
        Rebuilt from the envelope when ``ok`` is false, or
        ``malformed_frame`` when the envelope itself is ill-shaped.
    """
    if response.get("ok") is True:
        return response.get("result")
    error = response.get("error")
    if not isinstance(error, dict):
        raise ProtocolError(
            "malformed_frame", f"response envelope is ill-shaped: {response!r}"
        )
    code = error.get("code")
    message = str(error.get("message", ""))
    if code not in ERROR_CODES:
        raise ProtocolError("internal", f"unknown error code {code!r}: {message}")
    raise ProtocolError(str(code), message)


def address_of(spec: str) -> Address:
    """Parse a ``host:port`` or ``unix:/path`` address spec.

    Raises
    ------
    ValueError
        When the spec is neither form.
    """
    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise ValueError("empty unix socket path")
        return path
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"address {spec!r} is neither 'host:port' nor 'unix:/path'"
        )
    return host, int(port)


def connect(
    address: Address, timeout: Optional[float] = None
) -> socket.socket:
    """Open a blocking client socket to a TCP or unix-domain address."""
    if isinstance(address, str):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(address)
    except BaseException:
        sock.close()
        raise
    return sock
