"""Shared-memory publication of a built oracle for multi-worker serving.

The daemon's workers must not hold N pickled oracle copies: the frozen
CSR arrays, landmark potentials and component labels are the oracle's
entire bulk, they are read-only after construction, and Python's
``multiprocessing.shared_memory`` maps one copy into every process.
:func:`publish_oracle` lays a built :class:`DistanceOracle` out in a
single shared segment; :func:`attach_oracle` reconstructs a fully
functional oracle in another process whose array sections are
zero-copy ``memoryview`` casts over the shared buffer (the same idiom
the ``.rpg`` mmap loader uses in :mod:`repro.kernels.binfmt`).

Segment layout (all offsets 8-byte aligned)::

    [0:8)    magic  b"RPSHM01\\0"
    [8:16)   !Q  meta offset
    [16:24)  !Q  meta length
    [24:32)  !Q  total payload bytes
    [32:..)  array sections: indptr 'q', indices 'i', weights 'd',
             components 'i', potentials 'd' (L rows of n, one section)
    [meta)   pickled dict: verts, landmark_indices, strategy, seed,
             cache_size, n/m2/L, and the section offset table

Only the label list and a handful of scalars travel through pickle —
every O(n + m) array is shared.  Worker-side private memory growth on
attach is therefore bounded by the vertex-label list and the index
dict, which the memory-footprint test gates against the payload size.

Lifetime: the publisher owns the segment and must
:meth:`~OracleShare.unlink` it when the daemon exits.  Attached oracles
hold live memoryviews into the mapping, so :meth:`AttachedOracle.close`
drops the oracle and releases every exported view before unmapping;
workers call it on their way out.
"""

from __future__ import annotations

import array
import pickle
import struct
from multiprocessing import shared_memory
from typing import Any, Dict, List, Tuple

from repro.graphs.csr import CSRGraph
from repro.oracle.oracle import DistanceOracle

MAGIC = b"RPSHM01\x00"
_HEADER = struct.Struct("!QQQ")
_HEADER_END = len(MAGIC) + _HEADER.size


def _align(offset: int) -> int:
    return (offset + 7) & ~7


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    Python 3.13 grew ``track=False`` for exactly this.  On earlier
    interpreters an attach re-registers the name with the resource
    tracker; because the daemon's spawned workers share the parent's
    tracker process and its registry is set-based, that re-registration
    is idempotent and harmless — whereas the common ``unregister``
    workaround would strip the *publisher's* registration out of the
    shared tracker and leak the segment if the daemon dies uncleanly.
    So on pre-3.13 the attach deliberately leaves tracking alone; the
    publisher's :meth:`OracleShare.unlink` remains the one unlink.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        return shared_memory.SharedMemory(name=name)


class OracleShare:
    """Publisher-side handle: owns the segment until :meth:`unlink`."""

    def __init__(
        self,
        seg: shared_memory.SharedMemory,
        payload_bytes: int,
        n: int,
        m2: int,
        landmarks: int,
    ) -> None:
        self._seg = seg
        self.name = seg.name
        self.payload_bytes = payload_bytes
        self.n = n
        self.m2 = m2
        self.landmarks = landmarks

    def close(self) -> None:
        """Unmap the publisher's view (the segment itself survives)."""
        self._seg.close()

    def unlink(self) -> None:
        """Unmap and destroy the segment."""
        self._seg.close()
        try:
            self._seg.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass


class AttachedOracle:
    """Worker-side handle pairing the rebuilt oracle with its mapping.

    The oracle's array sections are memoryviews into the shared buffer;
    :meth:`close` drops the oracle reference and releases them all
    before unmapping (it never unlinks — the publisher owns that).
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        seg: shared_memory.SharedMemory,
        views: List[memoryview],
        payload_bytes: int,
    ) -> None:
        self.oracle: "DistanceOracle | None" = oracle
        self._seg = seg
        self._views = views
        self.payload_bytes = payload_bytes

    def close(self) -> None:
        """Release the oracle and every exported view, then unmap."""
        self.oracle = None
        for view in self._views:
            view.release()
        self._views.clear()
        self._seg.close()


def publish_oracle(oracle: DistanceOracle) -> OracleShare:
    """Lay ``oracle`` out in a fresh shared-memory segment.

    Returns the publisher handle; hand its ``name`` to worker processes
    for :func:`attach_oracle`.  The oracle itself is unchanged.
    """
    csr = oracle.csr
    n = csr.n
    m2 = len(csr.indices)
    flat_pots = array.array("d")
    for pot in oracle.potentials:
        flat_pots.extend(pot)
    raw_sections: List[Tuple[str, str, bytes]] = [
        ("indptr", "q", array.array("q", csr.indptr).tobytes()),
        ("indices", "i", array.array("i", csr.indices).tobytes()),
        ("weights", "d", memoryview(csr.weights).tobytes()),
        ("components", "i", array.array("i", oracle.components).tobytes()),
        ("potentials", "d", flat_pots.tobytes()),
    ]
    sections: Dict[str, Tuple[int, int, str]] = {}
    offset = _HEADER_END
    for sec_name, code, raw in raw_sections:
        offset = _align(offset)
        sections[sec_name] = (offset, len(raw), code)
        offset += len(raw)
    meta_offset = _align(offset)
    meta = pickle.dumps(
        {
            "verts": list(csr.verts),
            "landmark_indices": list(oracle.landmark_indices),
            "strategy": oracle.strategy,
            "seed": oracle.seed,
            "cache_size": oracle.cache_size,
            "n": n,
            "m2": m2,
            "landmarks": len(oracle.potentials),
            "sections": sections,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    total = meta_offset + len(meta)
    seg = shared_memory.SharedMemory(create=True, size=total)
    buf = seg.buf
    buf[: len(MAGIC)] = MAGIC
    _HEADER.pack_into(buf, len(MAGIC), meta_offset, len(meta), total)
    for sec_name, _code, raw in raw_sections:
        off, length, _ = sections[sec_name]
        buf[off : off + length] = raw
    buf[meta_offset : meta_offset + len(meta)] = meta
    return OracleShare(
        seg, payload_bytes=total, n=n, m2=m2, landmarks=len(oracle.potentials)
    )


def attach_oracle(name: str) -> AttachedOracle:
    """Rebuild a servable oracle over the shared segment ``name``.

    The CSR arrays, potentials and components of the returned oracle are
    zero-copy views into the shared mapping; only the vertex labels and
    the label-index dict are private to the attaching process.

    Raises
    ------
    ValueError
        When the segment does not carry the expected magic.
    """
    seg = _attach_segment(name)
    buf = seg.buf
    if bytes(buf[: len(MAGIC)]) != MAGIC:
        seg.close()
        raise ValueError(f"shared segment {name!r} lacks the {MAGIC!r} magic")
    meta_offset, meta_len, total = _HEADER.unpack_from(buf, len(MAGIC))
    meta: Dict[str, Any] = pickle.loads(
        bytes(buf[meta_offset : meta_offset + meta_len])
    )
    sections: Dict[str, Tuple[int, int, str]] = meta["sections"]
    views: List[memoryview] = []

    def section(sec_name: str) -> memoryview:
        off, length, code = sections[sec_name]
        view = memoryview(buf)[off : off + length].cast(code)
        views.append(view)
        return view

    n = int(meta["n"])
    landmarks = int(meta["landmarks"])
    indptr = section("indptr")
    indices = section("indices")
    weights = section("weights")
    components = section("components")
    flat_pots = section("potentials")
    potentials = [flat_pots[i * n : (i + 1) * n] for i in range(landmarks)]
    views.extend(potentials)
    csr = CSRGraph(indptr, indices, weights, list(meta["verts"]))  # type: ignore[arg-type]
    oracle = DistanceOracle(
        csr,
        list(meta["landmark_indices"]),
        potentials,  # type: ignore[arg-type]
        components,  # type: ignore[arg-type]
        str(meta["strategy"]),
        int(meta["seed"]),
        cache_size=int(meta["cache_size"]),
        copy=False,
    )
    return AttachedOracle(oracle, seg, views, payload_bytes=int(total))
