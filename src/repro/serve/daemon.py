"""Multi-worker oracle serving daemon over one shared-memory segment.

Architecture — one parent event loop, N compute workers::

    clients ── TCP / unix socket ──▶ parent (selectors loop)
                                        │  per-worker duplex Pipe
                                        ▼
                       worker 0 … worker N-1  (spawned processes)
                                        ▲
                one shared segment ─────┘  (repro.serve.shm)

The parent owns every client connection and never computes a distance;
workers never touch a socket.  That split is what makes crash isolation
*answerable*: when a worker dies (its ``Process.sentinel`` becomes
readable in the same selector that watches the sockets), the parent
still holds the client connections of the requests that died with it,
answers each with a typed ``worker_crashed`` error, and respawns the
worker — the daemon as a whole never hangs and never drops a
connection because of a worker failure.

Requests are dispatched to the live worker with the fewest outstanding
requests; ``stats`` fans out to every worker and folds the per-worker
:class:`~repro.obs.metrics.MetricsRegistry` snapshots into the parent's
registry via the existing ``snapshot()/merge()`` contract, so the
merged counters equal a single-worker run's exactly.

Robustness contract (regression-tested): malformed frames are answered
``malformed_frame`` on a connection that stays usable; an oversized
length prefix is answered ``oversized_frame`` and the connection is
closed (the stream position is unrecoverable); a client that
disconnects mid-request is dropped with a metrics counter and the
worker's eventual answer is discarded — no traceback ever reaches
stderr, no worker is ever left stuck.
"""

from __future__ import annotations

import os
import random
import selectors
import signal
import socket
import struct
import threading
import time
from multiprocessing import get_context
from multiprocessing.connection import Connection
from typing import Any, Dict, List, Optional, Set

from repro.obs.metrics import MetricsRegistry
from repro.oracle.oracle import DistanceOracle
from repro.serve import protocol
from repro.serve.protocol import Address
from repro.serve.shm import OracleShare, attach_oracle, publish_oracle

DEFAULT_WORKERS = 2
DEFAULT_HOST = "127.0.0.1"
#: how long start() waits for every worker's ready message
DEFAULT_READY_TIMEOUT = 60.0

_LEN = struct.Struct("!I")


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _execute(
    op: str,
    args: Dict[str, Any],
    oracle: DistanceOracle,
    by_name: Dict[str, Any],
    registry: MetricsRegistry,
    worker_id: int,
) -> Dict[str, Any]:
    """Run one dispatched op; always returns a response envelope."""

    def resolve(label: Any, field: str) -> Any:
        if not isinstance(label, str):
            raise protocol.ProtocolError(
                "bad_request", f"{op} needs a string {field!r} field"
            )
        try:
            return by_name[label]
        except KeyError:
            raise protocol.ProtocolError(
                "unknown_vertex",
                f"{label!r} is not a vertex of the served structure",
            ) from None

    try:
        registry.counter("serve.worker.requests").inc()
        if op == "query":
            u = resolve(args.get("u"), "u")
            v = resolve(args.get("v"), "v")
            return protocol.ok_response({"distance": oracle.query(u, v)})
        if op == "query_many":
            pairs = args.get("pairs")
            if not isinstance(pairs, list):
                raise protocol.ProtocolError(
                    "bad_request", "query_many needs a 'pairs' list of [u, v]"
                )
            resolved = []
            for pair in pairs:
                if not (isinstance(pair, (list, tuple)) and len(pair) == 2):
                    raise protocol.ProtocolError(
                        "bad_request", f"pair {pair!r} is not a [u, v] pair"
                    )
                resolved.append(
                    (resolve(pair[0], "pairs[0]"), resolve(pair[1], "pairs[1]"))
                )
            return protocol.ok_response(
                {"distances": oracle.query_many(resolved)}
            )
        if op == "k_nearest":
            v = resolve(args.get("v"), "v")
            k = args.get("k")
            if not isinstance(k, int) or isinstance(k, bool) or k < 1:
                raise protocol.ProtocolError(
                    "bad_request", f"k_nearest needs an int k >= 1, got {k!r}"
                )
            near = oracle.k_nearest(v, k)
            return protocol.ok_response(
                {"nearest": [[str(u), d] for u, d in near]}
            )
        if op == "stats":
            merged = MetricsRegistry()
            merged.merge(registry.snapshot())
            merged.merge(oracle.metrics.snapshot())
            return protocol.ok_response(
                {
                    "worker": worker_id,
                    "snapshot": merged.snapshot(),
                    "cache": oracle.cache_info(),
                }
            )
        raise protocol.ProtocolError(
            "bad_request", f"op {op!r} is not dispatchable to a worker"
        )
    except protocol.ProtocolError as exc:
        registry.counter("serve.worker.errors").inc()
        return protocol.error_response(exc.code, exc.message)
    except ValueError as exc:
        registry.counter("serve.worker.errors").inc()
        return protocol.error_response("bad_request", str(exc))
    except Exception as exc:  # noqa: BLE001 - the wire gets a typed error
        registry.counter("serve.worker.errors").inc()
        return protocol.error_response(
            "internal", f"{type(exc).__name__}: {exc}"
        )


def worker_main(
    worker_id: int, shm_name: str, conn: Connection, warm: int
) -> None:
    """Entry point of one serving worker (spawned process).

    Attaches the shared oracle segment (zero-copy), optionally warms the
    scratch arrays and cache with ``warm`` seeded self-queries, reports
    ready, then answers ``(req_id, op, args)`` messages from the parent
    until told to exit or the pipe closes.  All state is local to the
    process: a private metrics registry, the label-resolution dict, and
    the attached oracle — nothing global is written.
    """
    # the parent handles SIGINT for the whole process group; a worker
    # interrupted mid-recv would otherwise die with a KeyboardInterrupt
    # traceback instead of exiting through the pipe protocol
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    handle = attach_oracle(shm_name)
    oracle = handle.oracle
    assert oracle is not None
    registry = MetricsRegistry()
    by_name = {str(v): v for v in oracle.csr.verts}
    if warm > 0:
        rng = random.Random(oracle.seed * 1_000_003 + worker_id)
        verts = oracle.csr.verts
        for _ in range(warm):
            u = verts[rng.randrange(len(verts))]
            v = verts[rng.randrange(len(verts))]
            oracle.query(u, v)
    conn.send((-1, {"ready": worker_id, "pid": os.getpid()}))
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            req_id, op, args = message
            if op == "exit":
                break
            conn.send(
                (req_id, _execute(op, args, oracle, by_name, registry, worker_id))
            )
    except (BrokenPipeError, OSError):  # pragma: no cover - parent vanished
        pass
    finally:
        del oracle, by_name
        handle.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _Worker:
    """Parent-side record of one worker process."""

    __slots__ = ("worker_id", "proc", "conn", "outstanding", "alive")

    def __init__(self, worker_id: int, proc: Any, conn: Connection) -> None:
        self.worker_id = worker_id
        self.proc = proc
        self.conn = conn
        self.outstanding: Set[int] = set()
        self.alive = True


class _Client:
    """Parent-side record of one client connection."""

    __slots__ = ("sock", "fd", "rbuf", "wbuf", "closing", "inflight")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.fd = sock.fileno()
        self.rbuf = bytearray()
        self.wbuf = bytearray()
        self.closing = False  # close once wbuf drains (oversized frame)
        self.inflight: Set[int] = set()


class _Request:
    """One in-flight request: who asked, who is computing it."""

    __slots__ = ("req_id", "client_fd", "op", "worker_ids", "parts")

    def __init__(self, req_id: int, client_fd: int, op: str) -> None:
        self.req_id = req_id
        self.client_fd = client_fd
        self.op = op
        self.worker_ids: Set[int] = set()
        self.parts: List[Dict[str, Any]] = []


class Server:
    """The serving daemon: shared-memory publish + N workers + event loop.

    Build the oracle first (:meth:`DistanceOracle.build`), then::

        server = Server(oracle, workers=4, port=0)
        server.start()            # publish shm, spawn workers, bind
        server.serve_forever()    # blocks; request_shutdown() stops it

    ``port=0`` binds an ephemeral TCP port (read it back from
    ``server.address``); ``unix_path`` serves a unix-domain socket
    instead.  :meth:`serve_forever` tears everything down on exit —
    in-flight requests are answered ``shutting_down``, workers are told
    to exit and joined (killed if they won't), and the shared segment
    is unlinked; the teardown runs on the failure path too.
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        workers: int = DEFAULT_WORKERS,
        host: str = DEFAULT_HOST,
        port: int = 0,
        unix_path: Optional[str] = None,
        warm: int = 0,
        max_frame: int = protocol.DEFAULT_MAX_FRAME,
        respawn: bool = True,
        ready_timeout: float = DEFAULT_READY_TIMEOUT,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.oracle = oracle
        self.workers = workers
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.warm = warm
        self.max_frame = max_frame
        self.respawn = respawn
        self.ready_timeout = ready_timeout
        self.metrics = MetricsRegistry()
        self._share: Optional[OracleShare] = None
        self._workers: Dict[int, _Worker] = {}
        self._clients: Dict[int, _Client] = {}
        self._requests: Dict[int, _Request] = {}
        self._next_req = 0
        self._listener: Optional[socket.socket] = None
        self._sel: Optional[selectors.BaseSelector] = None
        self._ctx = get_context("spawn")
        self._wake_r: Optional[socket.socket] = None
        self._wake_w: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._closed = False
        self._started_at = 0.0

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> Address:
        """The bound address (``(host, port)`` or the unix socket path)."""
        if self.unix_path is not None:
            return self.unix_path
        if self._listener is None:
            return (self.host, self.port)
        bound = self._listener.getsockname()
        return (bound[0], bound[1])

    @property
    def payload_bytes(self) -> int:
        """Size of the published shared segment (0 before :meth:`start`)."""
        return self._share.payload_bytes if self._share is not None else 0

    def _spawn_worker(self, worker_id: int) -> _Worker:
        assert self._share is not None
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=worker_main,
            args=(worker_id, self._share.name, child_conn, self.warm),
            name=f"repro-serve-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        worker = _Worker(worker_id, proc, parent_conn)
        self._workers[worker_id] = worker
        self.metrics.counter("serve.workers.spawned").inc()
        if self._sel is not None:
            self._register_worker(worker)
        return worker

    def _register_worker(self, worker: _Worker) -> None:
        assert self._sel is not None
        self._sel.register(
            worker.conn, selectors.EVENT_READ, ("worker", worker.worker_id)
        )
        self._sel.register(
            worker.proc.sentinel,
            selectors.EVENT_READ,
            ("sentinel", worker.worker_id),
        )

    def start(self) -> None:
        """Publish the segment, spawn workers, wait ready, bind the socket.

        Raises
        ------
        RuntimeError
            When a worker fails to report ready within ``ready_timeout``.
        """
        self._share = publish_oracle(self.oracle)
        self._started_at = time.monotonic()
        try:
            for worker_id in range(self.workers):
                self._spawn_worker(worker_id)
            deadline = time.monotonic() + self.ready_timeout
            for worker in self._workers.values():
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not worker.conn.poll(remaining):
                    raise RuntimeError(
                        f"worker {worker.worker_id} not ready within "
                        f"{self.ready_timeout:.0f}s"
                    )
                try:
                    tag, info = worker.conn.recv()
                except (EOFError, OSError):
                    raise RuntimeError(
                        f"worker {worker.worker_id} died during startup"
                    ) from None
                if tag != -1 or not isinstance(info, dict) or "ready" not in info:
                    raise RuntimeError(
                        f"worker {worker.worker_id} sent {info!r} instead of ready"
                    )
            if self.unix_path is not None:
                try:
                    os.unlink(self.unix_path)
                except FileNotFoundError:
                    pass
                listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                listener.bind(self.unix_path)
            else:
                listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                listener.bind((self.host, self.port))
            listener.listen(128)
            listener.setblocking(False)
            self._listener = listener
            self._sel = selectors.DefaultSelector()
            self._sel.register(listener, selectors.EVENT_READ, ("listener", None))
            for worker in self._workers.values():
                self._register_worker(worker)
            self._wake_r, self._wake_w = socket.socketpair()
            self._wake_r.setblocking(False)
            self._sel.register(self._wake_r, selectors.EVENT_READ, ("wake", None))
        except BaseException:
            self.close()
            raise

    def request_shutdown(self) -> None:
        """Ask the loop to stop (thread- and signal-safe)."""
        self._stop.set()
        wake = self._wake_w
        if wake is not None:
            try:
                wake.send(b"x")
            except OSError:  # pragma: no cover - already closed
                pass

    # -- event loop ----------------------------------------------------
    def serve_forever(self) -> None:
        """Run until :meth:`request_shutdown` (or a ``shutdown`` op); then
        tear everything down, failure path included."""
        if self._sel is None:
            raise RuntimeError("serve_forever() before start()")
        try:
            while not self._stop.is_set():
                for key, mask in self._sel.select(timeout=0.5):
                    kind, tag = key.data
                    if kind == "listener":
                        self._accept()
                    elif kind == "wake":
                        try:
                            assert self._wake_r is not None
                            self._wake_r.recv(4096)
                        except (BlockingIOError, OSError):
                            pass
                    elif kind == "client":
                        if mask & selectors.EVENT_WRITE:
                            self._client_writable(tag)
                        if mask & selectors.EVENT_READ:
                            self._client_readable(tag)
                    elif kind == "worker":
                        self._worker_readable(tag)
                    elif kind == "sentinel":
                        self._worker_died(tag)
        finally:
            self.close()

    # -- clients -------------------------------------------------------
    def _accept(self) -> None:
        assert self._listener is not None and self._sel is not None
        try:
            sock, _addr = self._listener.accept()
        except OSError:
            return
        sock.setblocking(False)
        client = _Client(sock)
        self._clients[client.fd] = client
        self._sel.register(sock, selectors.EVENT_READ, ("client", client.fd))
        self.metrics.counter("serve.clients.accepted").inc()

    def _drop_client(self, client: _Client, midrequest: bool) -> None:
        assert self._sel is not None
        for req_id in list(client.inflight):
            request = self._requests.pop(req_id, None)
            if request is None:
                continue
            for worker_id in request.worker_ids:
                worker = self._workers.get(worker_id)
                if worker is not None:
                    worker.outstanding.discard(req_id)
        if midrequest and client.inflight:
            self.metrics.counter("serve.clients.disconnect_midrequest").inc()
        client.inflight.clear()
        try:
            self._sel.unregister(client.sock)
        except (KeyError, ValueError):
            pass
        self._clients.pop(client.fd, None)
        try:
            client.sock.close()
        except OSError:
            pass
        self.metrics.counter("serve.clients.closed").inc()

    def _send_to_client(self, client: _Client, payload: Dict[str, Any]) -> None:
        try:
            frame = protocol.encode_frame(payload, max_frame=self.max_frame)
        except protocol.ProtocolError:
            # the *response* outgrew the frame limit (huge query_many):
            # degrade to a typed error that always fits
            self._count_error("oversized_frame")
            frame = protocol.encode_frame(
                protocol.error_response(
                    "oversized_frame",
                    f"response exceeds the {self.max_frame}-byte frame limit",
                )
            )
        client.wbuf += frame
        self._flush_client(client)

    def _flush_client(self, client: _Client) -> None:
        assert self._sel is not None
        if client.wbuf:
            try:
                sent = client.sock.send(client.wbuf)
                del client.wbuf[:sent]
            except (BlockingIOError, InterruptedError):
                pass
            except OSError:
                self._drop_client(client, midrequest=True)
                return
        events = selectors.EVENT_READ
        if client.wbuf:
            events |= selectors.EVENT_WRITE
        try:
            self._sel.modify(client.sock, events, ("client", client.fd))
        except (KeyError, ValueError):
            return
        if client.closing and not client.wbuf:
            self._drop_client(client, midrequest=False)

    def _client_writable(self, fd: int) -> None:
        client = self._clients.get(fd)
        if client is not None:
            self._flush_client(client)

    def _client_readable(self, fd: int) -> None:
        client = self._clients.get(fd)
        if client is None:
            return
        try:
            data = client.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop_client(client, midrequest=True)
            return
        if not data:
            self._drop_client(client, midrequest=bool(client.inflight))
            return
        client.rbuf += data
        self._parse_frames(client)

    def _count_error(self, code: str) -> None:
        self.metrics.counter(f"serve.errors.{code}").inc()

    def _parse_frames(self, client: _Client) -> None:
        while not client.closing:
            if len(client.rbuf) < _LEN.size:
                return
            (length,) = _LEN.unpack_from(client.rbuf)
            if length > self.max_frame:
                self._count_error("oversized_frame")
                client.rbuf.clear()  # stream position is unrecoverable
                client.closing = True
                self._send_to_client(
                    client,
                    protocol.error_response(
                        "oversized_frame",
                        f"frame of {length} bytes exceeds the "
                        f"{self.max_frame}-byte limit",
                    ),
                )
                return
            if len(client.rbuf) < _LEN.size + length:
                return
            body = bytes(client.rbuf[_LEN.size : _LEN.size + length])
            del client.rbuf[: _LEN.size + length]
            try:
                op, args = protocol.parse_request(protocol.decode_body(body))
            except protocol.ProtocolError as exc:
                self._count_error(exc.code)
                self._send_to_client(
                    client, protocol.error_response(exc.code, exc.message)
                )
                continue
            self.metrics.counter("serve.requests.total").inc()
            self._handle_request(client, op, args)

    # -- request handling ----------------------------------------------
    def _alive_workers(self) -> List[_Worker]:
        return [w for w in self._workers.values() if w.alive]

    def _handle_request(
        self, client: _Client, op: str, args: Dict[str, Any]
    ) -> None:
        if self._stop.is_set():
            self._count_error("shutting_down")
            self._send_to_client(
                client,
                protocol.error_response(
                    "shutting_down", "the daemon is shutting down"
                ),
            )
            return
        if op == "ping":
            self._send_to_client(
                client, protocol.ok_response({"pong": True})
            )
            return
        if op == "info":
            share = self._share
            self._send_to_client(
                client,
                protocol.ok_response(
                    {
                        "n": self.oracle.csr.n,
                        "m": self.oracle.csr.m,
                        "landmarks": len(self.oracle.landmark_indices),
                        "strategy": self.oracle.strategy,
                        "seed": self.oracle.seed,
                        "workers": len(self._alive_workers()),
                        "payload_bytes": share.payload_bytes if share else 0,
                        "max_frame": self.max_frame,
                        "pid": os.getpid(),
                        "uptime_s": time.monotonic() - self._started_at,
                    }
                ),
            )
            return
        if op == "vertices":
            limit = args.get("limit", 100)
            offset = args.get("offset", 0)
            if (
                not isinstance(limit, int)
                or isinstance(limit, bool)
                or not isinstance(offset, int)
                or isinstance(offset, bool)
                or limit < 0
                or offset < 0
            ):
                self._count_error("bad_request")
                self._send_to_client(
                    client,
                    protocol.error_response(
                        "bad_request",
                        "vertices needs non-negative int 'limit'/'offset'",
                    ),
                )
                return
            verts = self.oracle.csr.verts
            self._send_to_client(
                client,
                protocol.ok_response(
                    {
                        "n": len(verts),
                        "vertices": [
                            str(v) for v in verts[offset : offset + limit]
                        ],
                    }
                ),
            )
            return
        if op == "shutdown":
            self._send_to_client(client, protocol.ok_response({"stopping": True}))
            self.request_shutdown()
            return
        if op == "crash_worker":
            self._crash_worker(client, args)
            return
        if op == "stats":
            self._fanout_stats(client)
            return
        # compute ops go to the least-loaded live worker
        alive = self._alive_workers()
        if not alive:
            self._count_error("worker_crashed")
            self._send_to_client(
                client,
                protocol.error_response(
                    "worker_crashed", "no live worker to serve the request"
                ),
            )
            return
        worker = min(alive, key=lambda w: (len(w.outstanding), w.worker_id))
        request = self._new_request(client, op)
        request.worker_ids.add(worker.worker_id)
        worker.outstanding.add(request.req_id)
        self.metrics.counter("serve.requests.dispatched").inc()
        self._send_to_worker(worker, request.req_id, op, args)

    def _new_request(self, client: _Client, op: str) -> _Request:
        self._next_req += 1
        request = _Request(self._next_req, client.fd, op)
        self._requests[request.req_id] = request
        client.inflight.add(request.req_id)
        return request

    def _send_to_worker(
        self, worker: _Worker, req_id: int, op: str, args: Dict[str, Any]
    ) -> None:
        try:
            worker.conn.send((req_id, op, args))
        except (BrokenPipeError, OSError):
            self._worker_died(worker.worker_id)

    def _crash_worker(self, client: _Client, args: Dict[str, Any]) -> None:
        """Kill one worker (test/ops endpoint exercising crash isolation)."""
        alive = self._alive_workers()
        if not alive:
            self._count_error("bad_request")
            self._send_to_client(
                client,
                protocol.error_response("bad_request", "no live worker to crash"),
            )
            return
        wanted = args.get("worker")
        if wanted is None:
            target = max(alive, key=lambda w: len(w.outstanding))
        else:
            matches = [w for w in alive if w.worker_id == wanted]
            if not matches:
                self._count_error("bad_request")
                self._send_to_client(
                    client,
                    protocol.error_response(
                        "bad_request", f"no live worker {wanted!r}"
                    ),
                )
                return
            target = matches[0]
        pid = target.proc.pid
        assert pid is not None
        os.kill(pid, signal.SIGKILL)
        self._send_to_client(
            client,
            protocol.ok_response({"killed": target.worker_id, "pid": pid}),
        )

    def _fanout_stats(self, client: _Client) -> None:
        alive = self._alive_workers()
        request = self._new_request(client, "stats")
        if not alive:
            self._finish_stats(request)
            return
        for worker in alive:
            request.worker_ids.add(worker.worker_id)
            worker.outstanding.add(request.req_id)
            self._send_to_worker(worker, request.req_id, "stats", {})

    def _finish_stats(self, request: _Request) -> None:
        self._requests.pop(request.req_id, None)
        client = self._clients.get(request.client_fd)
        if client is None:
            return
        client.inflight.discard(request.req_id)
        merged = MetricsRegistry()
        merged.merge(self.metrics.snapshot())
        caches = []
        for part in request.parts:
            merged.merge(part.get("snapshot", {}))
            caches.append(
                {"worker": part.get("worker"), "cache": part.get("cache")}
            )
        self._send_to_client(
            client,
            protocol.ok_response(
                {
                    "workers": len(request.parts),
                    "snapshot": merged.snapshot(),
                    "caches": caches,
                }
            ),
        )

    # -- worker events -------------------------------------------------
    def _worker_readable(self, worker_id: int) -> None:
        worker = self._workers.get(worker_id)
        if worker is None or not worker.alive:
            return
        try:
            while worker.conn.poll():
                req_id, envelope = worker.conn.recv()
                self._worker_reply(worker, req_id, envelope)
        except (EOFError, OSError):
            self._worker_died(worker_id)

    def _worker_reply(
        self, worker: _Worker, req_id: int, envelope: Dict[str, Any]
    ) -> None:
        if req_id == -1:  # a respawned worker reporting ready
            return
        worker.outstanding.discard(req_id)
        request = self._requests.get(req_id)
        if request is None:
            return  # client disconnected mid-request; answer discarded
        if request.op == "stats":
            request.worker_ids.discard(worker.worker_id)
            if envelope.get("ok") is True and isinstance(
                envelope.get("result"), dict
            ):
                request.parts.append(envelope["result"])
            if not request.worker_ids:
                self._finish_stats(request)
            return
        self._requests.pop(req_id, None)
        client = self._clients.get(request.client_fd)
        if client is None:
            return
        client.inflight.discard(req_id)
        if envelope.get("ok") is not True:
            error = envelope.get("error")
            if isinstance(error, dict) and error.get("code") in protocol.ERROR_CODES:
                self._count_error(str(error["code"]))
        self._send_to_client(client, envelope)

    def _worker_died(self, worker_id: int) -> None:
        assert self._sel is not None
        worker = self._workers.get(worker_id)
        if worker is None or not worker.alive:
            return
        worker.alive = False
        for fileobj in (worker.conn, worker.proc.sentinel):
            try:
                self._sel.unregister(fileobj)
            except (KeyError, ValueError):
                pass
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.proc.join(timeout=1.0)
        self.metrics.counter("serve.workers.crashed").inc()
        # every request that died with the worker gets a typed error now
        for req_id in sorted(worker.outstanding):
            request = self._requests.get(req_id)
            if request is None:
                continue
            if request.op == "stats":
                request.worker_ids.discard(worker_id)
                if not request.worker_ids:
                    self._finish_stats(request)
                continue
            self._requests.pop(req_id, None)
            client = self._clients.get(request.client_fd)
            if client is None:
                continue
            client.inflight.discard(req_id)
            self._count_error("worker_crashed")
            self._send_to_client(
                client,
                protocol.error_response(
                    "worker_crashed",
                    f"worker {worker_id} died while serving the request",
                ),
            )
        worker.outstanding.clear()
        self._workers.pop(worker_id, None)
        if self.respawn and not self._stop.is_set():
            self._spawn_worker(worker_id)
            self.metrics.counter("serve.workers.respawned").inc()

    # -- teardown ------------------------------------------------------
    def close(self) -> None:
        """Tear everything down (idempotent; runs on the failure path too)."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        # in-flight requests are answered with a typed shutting_down error
        for request in list(self._requests.values()):
            client = self._clients.get(request.client_fd)
            if client is None:
                continue
            client.inflight.discard(request.req_id)
            self._count_error("shutting_down")
            try:
                client.sock.setblocking(True)
                client.sock.settimeout(1.0)
                client.sock.sendall(
                    protocol.encode_frame(
                        protocol.error_response(
                            "shutting_down", "the daemon is shutting down"
                        )
                    )
                )
            except OSError:
                pass
        self._requests.clear()
        for client in list(self._clients.values()):
            try:
                client.sock.close()
            except OSError:
                pass
        self._clients.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self.unix_path is not None:
            try:
                os.unlink(self.unix_path)
            except OSError:
                pass
        for worker in self._workers.values():
            if not worker.alive:
                continue
            try:
                worker.conn.send((None, "exit", {}))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers.values():
            worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():  # pragma: no cover - stuck worker
                worker.proc.terminate()
                worker.proc.join(timeout=2.0)
                if worker.proc.is_alive():
                    worker.proc.kill()
                    worker.proc.join(timeout=2.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers.clear()
        for wake in (self._wake_r, self._wake_w):
            if wake is not None:
                try:
                    wake.close()
                except OSError:
                    pass
        self._wake_r = self._wake_w = None
        if self._sel is not None:
            self._sel.close()
            self._sel = None
        if self._share is not None:
            self._share.unlink()
            self._share = None
