"""Least-Element (LE) lists — Definition 1 of the paper.

Given a permutation π on a vertex subset A, the LE list of v is::

    LE(v) = {(u, d(u, v)) : u ∈ A, no w ∈ A with d(v, w) <= d(v, u)
                                         and π(w) < π(u)}

i.e. u joins v's list iff u is first in π among all A-vertices within
distance d(v, u) of v.  [KKM+12]: with a uniformly random π, every list
has O(log |A|) entries w.h.p.

[FL16] compute LE lists in CONGEST, not for G itself but for a graph H
with ``d_G <= d_H <= (1+δ)·d_G`` (Theorem 4 of the paper).  Per DESIGN.md
substitution 4 we realize H concretely — G with every weight rounded up to
the next power of (1+δ) — and compute *exact* LE lists on it with Cohen's
pruned-Dijkstra sweep: process u in increasing π order; Dijkstra from u,
pruned at vertices whose current best (earlier-π) distance is <= the
tentative one.  The round cost is charged with the [FL16] bound
``(√n + D) · 2^{Õ(√(log n · log(1/δ)))}``.
"""

from __future__ import annotations

import heapq
import math
import random

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.congest.ledger import RoundLedger
from repro.determinism import ensure_rng
from repro.graphs.weighted_graph import Vertex, WeightedGraph

INF = float("inf")


@dataclass
class LEListResult:
    """LE lists w.r.t. a (1+δ)-approximating graph H.

    Attributes
    ----------
    lists:
        Vertex → list of ``(u, d_H(u, v))`` entries in increasing-π /
        decreasing-distance order (the natural Cohen order).
    pi:
        The permutation used: vertex → rank.
    delta:
        The approximation parameter of H.
    rounds:
        Charged CONGEST rounds ([FL16] cost).
    """

    lists: Dict[Vertex, List[Tuple[Vertex, float]]]
    pi: Dict[Vertex, int]
    delta: float
    rounds: int = 0

    def max_list_length(self) -> int:
        """Longest LE list (w.h.p. O(log n) for uniform π — [KKM+12])."""
        return max((len(lst) for lst in self.lists.values()), default=0)


def fl16_round_cost(n: int, height: int, delta: float) -> int:
    """Charged rounds for one [FL16] LE-list computation.

    ``(√n + D) · 2^{Õ(√(log n · log(1/δ)))}`` with the Õ's polylog taken
    as 1 and the constant in the exponent as 1 (fixed once, library-wide).
    """
    if n <= 1:
        return 1
    sqrt_n = math.isqrt(n - 1) + 1
    exponent = math.ceil(math.sqrt(math.log2(n + 1) * math.log2(1.0 / max(delta, 1e-9) + 2)))
    return (sqrt_n + height) * (2 ** exponent)


def _rounded_graph(graph: WeightedGraph, delta: float) -> WeightedGraph:
    """The concrete H of Theorem 4: weights rounded up to powers of 1+δ."""
    if delta <= 0:
        return graph
    base = 1.0 + delta

    def up(_u: Vertex, _v: Vertex, w: float) -> float:
        return base ** math.ceil(math.log(w, base) - 1e-12)

    return graph.reweighted(up)


def compute_le_lists(
    graph: WeightedGraph,
    active: Iterable[Vertex],
    delta: float = 0.0,
    rng: Optional[random.Random] = None,
    pi: Optional[Dict[Vertex, int]] = None,
    bfs_height: Optional[int] = None,
    ledger: Optional[RoundLedger] = None,
    phase: str = "le-lists",
) -> LEListResult:
    """Compute LE lists of every vertex w.r.t. the active set A.

    Parameters
    ----------
    graph:
        The underlying graph G.
    active:
        The set A ⊆ V the permutation ranges over (Theorem 4's adaptation:
        "their algorithm was given in the case A = V, but it is a simple
        adaptation").  Lists are computed for *all* vertices of G.
    delta:
        Approximation parameter of H (0 = exact distances).
    rng / pi:
        Either a random source (a uniform permutation is sampled, as
        Theorem 4 does) or an explicit permutation (vertex → rank).
    """
    active = list(active)
    if pi is None:
        rng = ensure_rng(rng)
        order = list(active)
        rng.shuffle(order)
        pi = {v: i for i, v in enumerate(order)}
    else:
        order = sorted(active, key=lambda v: pi[v])

    n = graph.n
    height = bfs_height if bfs_height is not None else (math.isqrt(max(n - 1, 0)) + 1)
    led = ledger if ledger is not None else RoundLedger()
    rounds = led.charge(phase, fl16_round_cost(n, height, max(delta, 1e-6)))

    h = _rounded_graph(graph, delta)

    # Cohen's sweep: best[v] = smallest d_H(u, v) over earlier-π u.
    best: Dict[Vertex, float] = {v: INF for v in graph.vertices()}
    lists: Dict[Vertex, List[Tuple[Vertex, float]]] = {v: [] for v in graph.vertices()}
    for u in order:
        # pruned Dijkstra from u: stop at vertices already dominated
        dist: Dict[Vertex, float] = {u: 0.0}
        heap: List[Tuple[float, int, Vertex]] = [(0.0, 0, u)]
        counter = 1
        settled = set()
        while heap:
            d, _, x = heapq.heappop(heap)
            if x in settled:
                continue
            settled.add(x)
            if d >= best[x]:
                continue  # an earlier-π vertex is at least as close: prune
            lists[x].append((u, d))
            best[x] = d
            for y, w in h.neighbor_items(x):
                nd = d + w
                if nd < dist.get(y, INF) and nd < best[y]:
                    dist[y] = nd
                    heapq.heappush(heap, (nd, counter, y))
                    counter += 1
    return LEListResult(lists=lists, pi=pi, delta=delta, rounds=rounds)


def first_in_ball(
    result: LEListResult, v: Vertex, radius: float
) -> Optional[Vertex]:
    """The first vertex in π among active vertices with ``d_H(u, v) <= radius``.

    This is the §6 membership test: v joins the net iff
    ``first_in_ball(result, v, Δ) == v``.  Returns None when no list entry
    is within ``radius`` (possible when v itself is not active).
    """
    candidates = [(result.pi[u], u) for u, d in result.lists[v] if d <= radius]
    if not candidates:
        return None
    return min(candidates)[1]
