"""Least-Element lists ([Coh97], distributed by [FL16]) — §6 substrate."""

from repro.lelists.le_lists import (
    LEListResult,
    compute_le_lists,
    fl16_round_cost,
    first_in_ball,
)

__all__ = ["LEListResult", "compute_le_lists", "fl16_round_cost", "first_in_ball"]
