"""Graph generators used as evaluation workloads.

The paper has no empirical section, so the benchmark harness needs graph
families that exercise each construction:

* ``erdos_renyi_graph`` — dense general graphs for the §5 light spanner;
* ``random_geometric_graph`` / ``grid_graph`` — constant doubling dimension
  (ddim ≈ 2) for the §7 doubling spanner;
* ``unit_ball_graph`` — the family [DPP06] studied in the LOCAL model;
* ``star_graph`` / ``ring_of_cliques`` / ``caterpillar_graph`` — adversarial
  shapes where MST-following paths are long (classic SLT stress tests);
* ``random_tree`` — MST/Euler-tour unit tests.

All generators take an explicit ``seed`` so experiments are reproducible.
Weights are kept in ``[1, poly(n)]`` per the paper's Preliminaries.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.graphs.weighted_graph import WeightedGraph


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


def complete_graph(
    n: int, min_weight: float = 1.0, max_weight: float = 1.0, seed: Optional[int] = None
) -> WeightedGraph:
    """Complete graph on ``n`` vertices with uniform random weights."""
    rng = _rng(seed)
    g = WeightedGraph(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v, rng.uniform(min_weight, max_weight))
    return g


def path_graph(n: int, weights: Optional[Sequence[float]] = None) -> WeightedGraph:
    """Path 0-1-...-(n-1); ``weights`` optionally gives the n-1 edge weights."""
    g = WeightedGraph(range(n))
    for i in range(n - 1):
        w = weights[i] if weights is not None else 1.0
        g.add_edge(i, i + 1, w)
    return g


def cycle_graph(n: int, weight: float = 1.0) -> WeightedGraph:
    """Cycle on ``n >= 3`` vertices with uniform edge weight."""
    if n < 3:
        raise ValueError("cycle needs at least 3 vertices")
    g = path_graph(n, [weight] * (n - 1))
    g.add_edge(n - 1, 0, weight)
    return g


def star_graph(n: int, spoke_weight: float = 1.0, rim_weight: Optional[float] = None) -> WeightedGraph:
    """Star with centre 0 and ``n - 1`` leaves.

    When ``rim_weight`` is given, consecutive leaves are also connected in a
    rim cycle — the classic example where the MST (the rim plus one spoke)
    has terrible root-stretch, motivating shallow-light trees.
    """
    g = WeightedGraph(range(n))
    for v in range(1, n):
        g.add_edge(0, v, spoke_weight)
    if rim_weight is not None and n > 3:
        for v in range(1, n - 1):
            g.add_edge(v, v + 1, rim_weight)
        g.add_edge(n - 1, 1, rim_weight)
    return g


def grid_graph(rows: int, cols: int, weight: float = 1.0, seed: Optional[int] = None,
               jitter: float = 0.0) -> WeightedGraph:
    """``rows x cols`` grid; optional multiplicative weight jitter in [1, 1+jitter]."""
    rng = _rng(seed)

    def vid(r: int, c: int) -> int:
        return r * cols + c

    g = WeightedGraph(range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                g.add_edge(vid(r, c), vid(r, c + 1), weight * (1 + rng.random() * jitter))
            if r + 1 < rows:
                g.add_edge(vid(r, c), vid(r + 1, c), weight * (1 + rng.random() * jitter))
    return g


def erdos_renyi_graph(
    n: int,
    p: float,
    min_weight: float = 1.0,
    max_weight: float = 100.0,
    seed: Optional[int] = None,
    ensure_connected: bool = True,
) -> WeightedGraph:
    """G(n, p) with uniform random weights in ``[min_weight, max_weight]``.

    With ``ensure_connected`` a random Hamiltonian backbone path is added
    (with fresh random weights) so the result is always connected — spanner
    and SLT constructions require connectivity.
    """
    rng = _rng(seed)
    g = WeightedGraph(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v, rng.uniform(min_weight, max_weight))
    if ensure_connected and n > 1:
        order = list(range(n))
        rng.shuffle(order)
        for a, b in zip(order, order[1:]):
            if not g.has_edge(a, b):
                g.add_edge(a, b, rng.uniform(min_weight, max_weight))
    return g


def random_points(
    n: int, dim: int = 2, side: float = 1.0, seed: Optional[int] = None
) -> List[Tuple[float, ...]]:
    """``n`` uniform points in ``[0, side]^dim`` (helper for geometric graphs)."""
    rng = _rng(seed)
    return [tuple(rng.uniform(0, side) for _ in range(dim)) for _ in range(n)]


def _euclidean(p: Tuple[float, ...], q: Tuple[float, ...]) -> float:
    return math.sqrt(sum((a - b) ** 2 for a, b in zip(p, q)))


def random_geometric_graph(
    n: int,
    radius: Optional[float] = None,
    dim: int = 2,
    seed: Optional[int] = None,
    weight_scale: float = 100.0,
) -> WeightedGraph:
    """Random geometric graph: points in the unit cube, edges below ``radius``.

    Edge weights are (scaled) Euclidean distances, clamped to be >= 1, so the
    shortest-path metric is doubling with ddim = O(dim).  The default radius
    ``2 * (log n / n)^(1/dim)`` is above the connectivity threshold.
    """
    if radius is None:
        radius = 2.0 * (math.log(max(n, 2)) / max(n, 2)) ** (1.0 / dim)
    pts = random_points(n, dim=dim, seed=seed)
    g = WeightedGraph(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            d = _euclidean(pts[u], pts[v])
            if d <= radius:
                g.add_edge(u, v, max(1.0, d * weight_scale))
    # connect stragglers to their nearest neighbour so the graph is usable
    comps = g.connected_components()
    while len(comps) > 1:
        best = None
        main = comps[0]
        for other in comps[1:]:
            for u in main:
                for v in other:
                    d = _euclidean(pts[u], pts[v])
                    if best is None or d < best[0]:
                        best = (d, u, v)
        assert best is not None
        g.add_edge(best[1], best[2], max(1.0, best[0] * weight_scale))
        comps = g.connected_components()
    return g


def unit_ball_graph(
    n: int, dim: int = 2, side: float = 4.0, seed: Optional[int] = None,
    weight_scale: float = 10.0,
) -> WeightedGraph:
    """Unit ball graph (footnote 6): points in a doubling metric, edges at
    distance <= 1, weighted by the metric distance (scaled to be >= 1).

    Mirrors the [DPP06] setting the paper contrasts itself with.
    Disconnected samples are stitched like ``random_geometric_graph``.
    """
    pts = random_points(n, dim=dim, side=side, seed=seed)
    g = WeightedGraph(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            d = _euclidean(pts[u], pts[v])
            if d <= 1.0:
                g.add_edge(u, v, max(1.0, d * weight_scale))
    comps = g.connected_components()
    while len(comps) > 1:
        best = None
        main = comps[0]
        for other in comps[1:]:
            for u in main:
                for v in other:
                    d = _euclidean(pts[u], pts[v])
                    if best is None or d < best[0]:
                        best = (d, u, v)
        assert best is not None
        g.add_edge(best[1], best[2], max(1.0, best[0] * weight_scale))
        comps = g.connected_components()
    return g


def random_tree(
    n: int, min_weight: float = 1.0, max_weight: float = 10.0, seed: Optional[int] = None
) -> WeightedGraph:
    """Uniform random recursive tree with random weights (Euler-tour tests)."""
    rng = _rng(seed)
    g = WeightedGraph(range(n))
    for v in range(1, n):
        parent = rng.randrange(v)
        g.add_edge(parent, v, rng.uniform(min_weight, max_weight))
    return g


def power_law_graph(
    n: int,
    attach: int = 2,
    min_weight: float = 1.0,
    max_weight: float = 10.0,
    seed: Optional[int] = None,
) -> WeightedGraph:
    """Preferential-attachment (Barabási–Albert) graph with random weights.

    Starts from a clique on ``attach + 1`` vertices; every later vertex
    attaches to ``attach`` distinct existing vertices sampled
    proportionally to degree.  The degree sequence is power-law-ish —
    hub-and-spoke workloads where a few vertices carry most of the edges,
    the opposite regime from ER/grid.  Connected by construction.
    """
    if attach < 1:
        raise ValueError("attach must be >= 1")
    if n < attach + 1:
        raise ValueError("n must be at least attach + 1")
    rng = _rng(seed)
    g = WeightedGraph(range(n))
    # endpoint multiset: sampling uniformly from it = degree-proportional
    endpoints: List[int] = []
    for u in range(attach + 1):
        for v in range(u + 1, attach + 1):
            g.add_edge(u, v, rng.uniform(min_weight, max_weight))
            endpoints.extend((u, v))
    for v in range(attach + 1, n):
        targets: set = set()
        while len(targets) < attach:
            targets.add(endpoints[rng.randrange(len(endpoints))])
        for u in targets:
            g.add_edge(u, v, rng.uniform(min_weight, max_weight))
            endpoints.extend((u, v))
    return g


def caterpillar_graph(
    spine: int, legs_per_vertex: int = 2, spine_weight: float = 10.0, leg_weight: float = 1.0
) -> WeightedGraph:
    """Caterpillar: a heavy spine path with light legs.

    A long, heavy MST spine makes MST-following root paths expensive —
    useful for exercising the SLT break-point machinery and for graphs with
    large hop-diameter D.
    """
    g = WeightedGraph()
    for i in range(spine):
        g.add_vertex(i)
        if i > 0:
            g.add_edge(i - 1, i, spine_weight)
    next_id = spine
    for i in range(spine):
        for _ in range(legs_per_vertex):
            g.add_vertex(next_id)
            g.add_edge(i, next_id, leg_weight)
            next_id += 1
    return g


def hypercube_graph(dim: int, weight: float = 1.0, seed: Optional[int] = None,
                    jitter: float = 0.0) -> WeightedGraph:
    """The ``dim``-dimensional hypercube (n = 2^dim, hop-diameter = dim).

    Small hop-diameter with n^... vertices — the regime where the ``D``
    term of the round bounds is negligible and the √n term dominates.
    """
    rng = _rng(seed)
    n = 1 << dim
    g = WeightedGraph(range(n))
    for v in range(n):
        for b in range(dim):
            u = v ^ (1 << b)
            if u > v:
                g.add_edge(v, u, weight * (1 + rng.random() * jitter))
    return g


def random_regular_graph(
    n: int, degree: int, min_weight: float = 1.0, max_weight: float = 10.0,
    seed: Optional[int] = None,
) -> WeightedGraph:
    """Random ``degree``-regular-ish graph (expander-like for degree >= 3).

    Built by the pairing model with retries; parallel edges/self-loops
    are rejected, so a few vertices may end up one short of ``degree``.
    A random backbone cycle guarantees connectivity.
    """
    if degree >= n:
        raise ValueError("degree must be below n")
    rng = _rng(seed)
    g = WeightedGraph(range(n))
    stubs = [v for v in range(n) for _ in range(degree)]
    for _attempt in range(60):
        rng.shuffle(stubs)
        ok = True
        trial = WeightedGraph(range(n))
        for a, b in zip(stubs[::2], stubs[1::2]):
            if a == b or trial.has_edge(a, b):
                ok = False
                break
            trial.add_edge(a, b, rng.uniform(min_weight, max_weight))
        if ok:
            g = trial
            break
    order = list(range(n))
    rng.shuffle(order)
    for a, b in zip(order, order[1:] + [order[0]]):
        if not g.has_edge(a, b):
            g.add_edge(a, b, rng.uniform(min_weight, max_weight))
    return g


def barbell_graph(clique_size: int, path_length: int, clique_weight: float = 1.0,
                  path_weight: float = 1.0) -> WeightedGraph:
    """Two cliques joined by a path — large hop-diameter D.

    The classical bad case for broadcast-based algorithms: D ≈
    ``path_length`` dominates the Õ(√n + D) bounds.
    """
    g = WeightedGraph()
    for base in (0, clique_size + path_length):
        for i in range(clique_size):
            g.add_vertex(base + i)
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                g.add_edge(base + i, base + j, clique_weight)
    prev = 0  # a vertex of the left clique
    for i in range(path_length):
        mid = clique_size + i
        g.add_vertex(mid)
        g.add_edge(prev, mid, path_weight)
        prev = mid
    g.add_edge(prev, clique_size + path_length, path_weight)
    return g


_MASK64 = (1 << 64) - 1
_RC_MIX1 = 0xBF58476D1CE4E5B9
_RC_MIX2 = 0x94D049BB133111EB
_RC_U = 0xC2B2AE3D27D4EB4F
_RC_V = 0x165667B19E3779F9


def _splitmix64(z: int) -> int:
    """Finalizer of the splitmix64 generator (pure 64-bit avalanche)."""
    z = ((z ^ (z >> 30)) * _RC_MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _RC_MIX2) & _MASK64
    return z ^ (z >> 31)


def ring_chord_weight(seed: int, u: int, v: int) -> float:
    """Weight of ring-chords edge ``{u, v}``: a pure function in [1, 2).

    Hashing ``(seed, min, max)`` instead of drawing from an RNG stream
    is what lets :mod:`repro.kernels.genpack` stream the identical
    graph straight to disk in any vertex order, without replaying a
    generator state.  The numpy packer replicates this arithmetic in
    wrapping uint64, bit-for-bit.
    """
    a, b = (u, v) if u <= v else (v, u)
    z = ((seed & _MASK64) ^ ((a * _RC_U + b * _RC_V) & _MASK64)) & _MASK64
    return 1.0 + _splitmix64(z) / 2.0**64


def ring_chord_offsets(n: int, chords: int) -> Tuple[int, ...]:
    """The canonical neighbour-offset set of the ring-chords family.

    Offsets are residues mod ``n``: the ring (``±1``) plus ``chords``
    strides spread geometrically from ``isqrt(n)`` (clamped to
    ``[2, n//2]``), each contributing both directions.  Every vertex
    ``i`` is adjacent to exactly ``{(i + o) % n}`` over these offsets,
    so the degree is uniformly ``len(offsets)`` — which is what lets
    the packer precompute ``indptr`` as a flat stride.
    """
    if n < 5:
        raise ValueError("ring-chords needs at least 5 vertices")
    if chords < 0:
        raise ValueError("chords must be >= 0")
    offsets = {1, n - 1}
    stride = max(2, math.isqrt(n))
    for _ in range(chords):
        s = min(stride, n // 2)
        while (s in offsets or (n - s) in offsets) and s < n // 2:
            s += 1
        if s in offsets or (n - s) in offsets:
            break  # n too small to fit another distinct stride
        offsets.add(s)
        offsets.add(n - s)
        stride = stride * 2 + 1
    return tuple(sorted(offsets))


def ring_chords_graph(n: int, chords: int = 2, seed: int = 0) -> WeightedGraph:
    """Deterministic ring + geometric chord strides (the ``huge``-tier family).

    A weighted ring with ``chords`` extra strides near ``sqrt(n)``
    keeps the hop diameter at ``O(sqrt(n))`` while staying
    constant-degree — the regime where frontier-relaxation kernels
    shine.  A pure function of ``(n, chords, seed)``: the streamed
    binary packer produces the identical CSR without ever building
    this object, and ``tests/test_kernels.py`` holds the two to exact
    parity.
    """
    offsets = ring_chord_offsets(n, chords)
    g = WeightedGraph(range(n))
    for u in range(n):
        for o in offsets:
            v = (u + o) % n
            if u < v:
                g.add_edge(u, v, ring_chord_weight(seed, u, v))
    return g


def ring_of_cliques(
    num_cliques: int, clique_size: int, intra_weight: float = 1.0, inter_weight: float = 50.0
) -> WeightedGraph:
    """Cliques arranged in a ring with heavy inter-clique edges.

    The MST must pay for ``num_cliques - 1`` heavy edges, while spanners can
    shortcut across cliques — a workload where lightness and sparsity pull
    in different directions.
    """
    if num_cliques < 3:
        raise ValueError("need at least 3 cliques")
    g = WeightedGraph()
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            g.add_vertex(base + i)
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                g.add_edge(base + i, base + j, intra_weight)
    for c in range(num_cliques):
        u = c * clique_size
        v = ((c + 1) % num_cliques) * clique_size
        g.add_edge(u, v, inter_weight)
    return g
