"""Indexed CSR (compressed-sparse-row) fast-path graph backend.

:class:`~repro.graphs.weighted_graph.WeightedGraph` is the mutable
construction layer: algorithms build, merge and prune graphs through its
adjacency-map API.  Once a graph stops mutating, the hot loops — Dijkstra
relaxations, spanner cluster scans, CONGEST message fan-out — pay for
dict-of-dict iteration, per-edge ``canonical_edge`` calls and hashing of
arbitrary vertex labels on every visit.

:class:`CSRGraph` is the read-only fast path: vertices are relabelled to
``0..n-1`` once, and the adjacency structure is flattened into three
contiguous arrays

* ``indptr``  — ``n + 1`` row offsets; the neighbours of vertex ``i``
  occupy slots ``indptr[i]:indptr[i+1]``,
* ``indices`` — neighbour vertex indices, sorted within each row,
* ``weights`` — the matching edge weights (``array('d')``, contiguous
  C doubles).

Each undirected edge occupies two slots (one per direction).  Degree is
an O(1) subtraction, edge lookup is a binary search of a sorted row, and
the inner loops of the consumers become integer-indexed array scans with
no hashing at all.  Build via :meth:`CSRGraph.from_weighted` or the
:meth:`WeightedGraph.freeze` / :meth:`WeightedGraph.to_csr` bridge.

The label-level inspection API (``vertices``/``edges``/``neighbors``/
``neighbor_items``/``degree``/``has_edge``/``weight``...) mirrors
``WeightedGraph`` so read-only consumers accept either backend; the
index-level API (``row``, ``indices``, ``weights``, ``mirror``) is what
the rewritten hot paths use directly.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import TYPE_CHECKING, Dict, Hashable, Iterator, List, Optional, Set, Tuple

if TYPE_CHECKING:
    from repro.graphs.weighted_graph import WeightedGraph

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


class CSRGraph:
    """Immutable compressed-sparse-row view of a weighted undirected graph.

    Instances are built once (:meth:`from_weighted`) and never mutated;
    there are deliberately no ``add_edge``/``remove_edge`` methods.  The
    raw arrays are public on purpose — hot loops bind them to locals and
    scan ``indices[indptr[i]:indptr[i+1]]`` directly.
    """

    __slots__ = (
        "indptr", "indices", "weights", "verts", "_index", "_mirror", "_sorted",
    )

    def __init__(
        self,
        indptr: List[int],
        indices: List[int],
        weights: "array[float]",
        verts: List[Vertex],
    ) -> None:
        from repro.graphs.weighted_graph import vertex_le

        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.verts = verts
        self._index: Dict[Vertex, int] = {v: i for i, v in enumerate(verts)}
        self._mirror: Optional[List[int]] = None
        # when the label order is already canonical (the common case:
        # generators insert int vertices 0..n-1 in order), edges() can
        # yield (verts[i], verts[j]) directly without re-canonicalising
        self._sorted: bool = all(
            vertex_le(verts[k], verts[k + 1]) for k in range(len(verts) - 1)
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_weighted(cls, graph: "WeightedGraph") -> "CSRGraph":
        """Flatten a :class:`WeightedGraph` (vertex order = insertion order)."""
        verts: List[Vertex] = list(graph.vertices())
        index = {v: i for i, v in enumerate(verts)}
        n = len(verts)
        indptr = [0] * (n + 1)
        total = 0
        for i, v in enumerate(verts):
            total += graph.degree(v)
            indptr[i + 1] = total
        indices = [0] * total
        weights = array("d", bytes(8 * total))
        pos = 0
        for v in verts:
            row = sorted((index[u], w) for u, w in graph.neighbor_items(v))
            for j, w in row:
                indices[pos] = j
                weights[pos] = w
                pos += 1
        return cls(indptr, indices, weights, verts)

    def to_weighted(self) -> "WeightedGraph":
        """Thaw back into a mutable :class:`WeightedGraph`."""
        from repro.graphs.weighted_graph import WeightedGraph

        g = WeightedGraph(self.verts)
        indptr, indices, weights, verts = (
            self.indptr, self.indices, self.weights, self.verts,
        )
        for i in range(len(verts)):
            for s in range(indptr[i], indptr[i + 1]):
                j = indices[s]
                if i < j:
                    g.add_edge(verts[i], verts[j], weights[s])
        return g

    # ------------------------------------------------------------------
    # Index-level API (the fast path)
    # ------------------------------------------------------------------
    def index_of(self, v: Vertex) -> int:
        """Dense index of vertex ``v`` (KeyError if absent)."""
        return self._index[v]

    def vertex_at(self, i: int) -> Vertex:
        """Label of the vertex with dense index ``i``."""
        return self.verts[i]

    def row(self, i: int) -> range:
        """Slot range of vertex ``i``'s neighbours in ``indices``/``weights``."""
        return range(self.indptr[i], self.indptr[i + 1])

    def degree_idx(self, i: int) -> int:
        """Degree of the vertex with dense index ``i`` (O(1))."""
        return self.indptr[i + 1] - self.indptr[i]

    def edge_slot(self, i: int, j: int) -> int:
        """Slot of the directed arc ``i -> j``, or ``-1`` if absent.

        Binary search of the sorted row — O(log deg(i)).
        """
        lo, hi = self.indptr[i], self.indptr[i + 1]
        s = bisect_left(self.indices, j, lo, hi)
        return s if s < hi and self.indices[s] == j else -1

    def mirror(self) -> List[int]:
        """Slot permutation mapping each arc to its reverse arc.

        ``mirror()[s]`` is the slot of ``j -> i`` when slot ``s`` holds
        ``i -> j``.  Built lazily (one binary search per arc) and cached;
        mutating consumers (e.g. the Baswana–Sen alive-mask) use it to
        retire both directions of an edge in O(log deg).
        """
        if self._mirror is None:
            indptr, indices = self.indptr, self.indices
            mirror = [0] * len(indices)
            for i in range(len(self.verts)):
                for s in range(indptr[i], indptr[i + 1]):
                    mirror[s] = self.edge_slot(indices[s], i)
            self._mirror = mirror
        return self._mirror

    def edges_idx(self) -> Iterator[Tuple[int, int, float]]:
        """Each undirected edge once, as ``(i, j, w)`` with ``i < j``."""
        indptr, indices, weights = self.indptr, self.indices, self.weights
        for i in range(len(self.verts)):
            for s in range(indptr[i], indptr[i + 1]):
                j = indices[s]
                if i < j:
                    yield i, j, weights[s]

    # ------------------------------------------------------------------
    # Label-level API (mirrors WeightedGraph inspection)
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self.verts)

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over vertex labels (dense-index order)."""
        return iter(self.verts)

    def edges(self) -> Iterator[Tuple[Vertex, Vertex, float]]:
        """Each undirected edge once, as canonical ``(u, v, weight)`` labels.

        Yields the same orientation as ``WeightedGraph.edges()`` so edge
        lists built from either backend compare equal.
        """
        indptr, indices, weights, verts = (
            self.indptr, self.indices, self.weights, self.verts,
        )
        if self._sorted:
            for i in range(len(verts)):
                u = verts[i]
                for s in range(indptr[i], indptr[i + 1]):
                    j = indices[s]
                    if i < j:
                        yield u, verts[j], weights[s]
            return
        from repro.graphs.weighted_graph import canonical_edge

        for i, j, w in self.edges_idx():
            u, v = canonical_edge(verts[i], verts[j])
            yield u, v, w

    def edge_set(self) -> Set[Edge]:
        """Canonical edge set (parity with ``WeightedGraph.edge_set``)."""
        from repro.graphs.weighted_graph import canonical_edge

        return {canonical_edge(u, v) for u, v, _ in self.edges()}

    def neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """Neighbour labels of ``v`` (sorted by dense index)."""
        verts = self.verts
        for s in self.row(self._index[v]):
            yield verts[self.indices[s]]

    def neighbor_items(self, v: Vertex) -> Iterator[Tuple[Vertex, float]]:
        """``(neighbour, weight)`` pairs of ``v``."""
        verts, indices, weights = self.verts, self.indices, self.weights
        for s in self.row(self._index[v]):
            yield verts[indices[s]], weights[s]

    def degree(self, v: Vertex) -> int:
        """Degree of ``v`` (O(1))."""
        i = self._index[v]
        return self.indptr[i + 1] - self.indptr[i]

    def has_vertex(self, v: Vertex) -> bool:
        """True iff ``v`` is a vertex."""
        return v in self._index

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """True iff ``{u, v}`` is an edge."""
        iu = self._index.get(u)
        iv = self._index.get(v)
        if iu is None or iv is None:
            return False
        return self.edge_slot(iu, iv) >= 0

    def weight(self, u: Vertex, v: Vertex) -> float:
        """Weight of ``{u, v}`` (KeyError if absent)."""
        s = self.edge_slot(self._index[u], self._index[v])
        if s < 0:
            raise KeyError((u, v))
        return self.weights[s]

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(self.weights) / 2.0

    def min_weight(self) -> float:
        """Minimum edge weight (``inf`` on an edgeless graph)."""
        return min(self.weights, default=float("inf"))

    def max_weight(self) -> float:
        """Maximum edge weight (0 on an edgeless graph)."""
        return max(self.weights, default=0.0)

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._index

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self.verts)

    def __len__(self) -> int:
        return len(self.verts)

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.n}, m={self.m})"
