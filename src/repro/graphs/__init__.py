"""Weighted-graph substrate: core data structure, distances, generators.

Everything in the repository operates on :class:`~repro.graphs.weighted_graph.WeightedGraph`,
a small adjacency-map graph tuned for the algorithms in the paper
(MST, Euler tours, spanners, nets).  Converters to/from ``networkx``
are provided for cross-validation in the test-suite.
"""

from repro.graphs.weighted_graph import WeightedGraph, canonical_edge
from repro.graphs.csr import CSRGraph
from repro.graphs.shortest_paths import (
    dijkstra,
    dijkstra_path,
    bounded_dijkstra,
    all_pairs_shortest_paths,
    eccentricity,
    hop_distances,
    hop_diameter,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
    grid_graph,
    erdos_renyi_graph,
    random_geometric_graph,
    unit_ball_graph,
    random_tree,
    caterpillar_graph,
    ring_of_cliques,
    hypercube_graph,
    power_law_graph,
    random_regular_graph,
    barbell_graph,
    ring_chord_offsets,
    ring_chord_weight,
    ring_chords_graph,
)
from repro.graphs.lower_bound_family import das_sarma_hard_graph
from repro.graphs.doubling import (
    doubling_dimension_estimate,
    ball,
    packing_number,
)

__all__ = [
    "WeightedGraph",
    "CSRGraph",
    "canonical_edge",
    "dijkstra",
    "dijkstra_path",
    "bounded_dijkstra",
    "all_pairs_shortest_paths",
    "eccentricity",
    "hop_distances",
    "hop_diameter",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "grid_graph",
    "erdos_renyi_graph",
    "random_geometric_graph",
    "unit_ball_graph",
    "random_tree",
    "caterpillar_graph",
    "ring_of_cliques",
    "hypercube_graph",
    "power_law_graph",
    "random_regular_graph",
    "barbell_graph",
    "ring_chord_offsets",
    "ring_chord_weight",
    "ring_chords_graph",
    "das_sarma_hard_graph",
    "doubling_dimension_estimate",
    "ball",
    "packing_number",
]
