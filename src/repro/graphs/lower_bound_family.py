"""Hard-instance family in the style of Das Sarma et al. [SHK+12] (§8).

The paper's lower bounds (Theorems 6 and 7) reduce light-spanner / SLT /
net construction to approximating the MST weight, which on the [SHK+12]
family needs Ω̃(√n) rounds.  The family is, in essence, a long path of
Θ(√n) "highways" attached to Θ(√n)-sized subtrees, rigged so that global
weight information must cross the whole path.

The only structural property §8 actually uses is *polynomial diameter*
(weighted aspect ratio Λ = poly(n)) — see the proof of Theorem 7.  This
generator reproduces the shape: a base path of length ``p`` with ``p``
pendant spikes, plus a small number of long-range "highway" edges that give
it small hop-diameter while keeping the weighted diameter polynomial, and a
planted weight parameter that an MST-weight approximation must recover.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Tuple

from repro.graphs.weighted_graph import WeightedGraph


def das_sarma_hard_graph(
    n: int,
    planted_weight: float = 1.0,
    seed: Optional[int] = None,
) -> Tuple[WeightedGraph, float]:
    """Build a hard instance on ~``n`` vertices.

    Structure: a path ``P`` of ``p = floor(sqrt(n))`` *column heads*, each
    head carrying a path of ``p`` spike vertices (so ``~n`` vertices total).
    Spike edges have weight 1.  Path edges have weight ``planted_weight``
    for the second half of the path and 1 for the first half, so the MST
    weight is ``Θ(n) + Θ(sqrt(n)) * planted_weight`` — any polynomial
    approximation of ``w(MST)`` distinguishes ``planted_weight = 1`` from
    ``planted_weight = n^2``, which is the crux of the [SHK+12] reduction.
    A binary-tree overlay of zero-cost-to-hop "highway" edges (heavy weight,
    never in the MST) keeps the hop-diameter ``O(log n)``.

    Returns
    -------
    (graph, mst_weight):
        The instance and its exact MST weight (for assertions).
    """
    rng = random.Random(seed)
    p = max(2, int(math.isqrt(n)))
    g = WeightedGraph()

    heads = list(range(p))
    for h in heads:
        g.add_vertex(h)
    next_id = p

    mst_weight = 0.0
    # the base path of heads
    for i in range(p - 1):
        w = 1.0 if i < p // 2 else float(planted_weight)
        g.add_edge(heads[i], heads[i + 1], w)
        mst_weight += w

    # spikes: a path of p light vertices under each head
    for h in heads:
        prev = h
        for _ in range(p):
            g.add_vertex(next_id)
            g.add_edge(prev, next_id, 1.0)
            mst_weight += 1.0
            prev = next_id
            next_id += 1

    # highway overlay on the heads: binary-lifting shortcuts with heavy
    # weight (heavier than any path between their endpoints, so they never
    # enter the MST) — they exist purely to shrink the hop-diameter.
    heavy = (p + 1) * max(1.0, float(planted_weight)) * 4
    span = 2
    while span < p:
        for i in range(0, p - span, span):
            g.add_edge(heads[i], heads[i + span], heavy * (1 + rng.random()))
        span *= 2
    if p > 2:
        g.add_edge(heads[0], heads[p - 1], heavy * (1 + rng.random()))

    return g, mst_weight
