"""Sequential shortest-path routines (ground truth for the simulator).

These are the *centralized* references the test-suite and the analysis
package use to validate the distributed constructions: exact Dijkstra,
distance-bounded Dijkstra (needed by the §7 doubling spanner, which runs
2Δ-bounded explorations), hop-ignoring BFS (the paper's hop-diameter ``D``),
and small-graph all-pairs distances.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.graphs.weighted_graph import Vertex, WeightedGraph

INF = float("inf")


def dijkstra(
    graph: WeightedGraph,
    sources: Iterable[Vertex] | Vertex,
    weight_override: Optional[Dict[Tuple[Vertex, Vertex], float]] = None,
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Optional[Vertex]]]:
    """Multi-source Dijkstra.

    Parameters
    ----------
    graph:
        The weighted graph.
    sources:
        A single vertex or an iterable of source vertices (all at
        distance 0).
    weight_override:
        Optional map from canonical edges to replacement weights.

    Returns
    -------
    (dist, parent):
        ``dist[v]`` is the distance from the nearest source (vertices
        unreachable from every source are absent); ``parent[v]`` is the
        predecessor on a shortest path (``None`` for sources).
    """
    try:
        if graph.has_vertex(sources):  # single-vertex call
            sources = [sources]
    except TypeError:
        pass  # unhashable => definitely an iterable of sources
    dist: Dict[Vertex, float] = {}
    parent: Dict[Vertex, Optional[Vertex]] = {}
    heap: List[Tuple[float, int, Vertex]] = []
    counter = 0
    for s in sources:
        dist[s] = 0.0
        parent[s] = None
        heapq.heappush(heap, (0.0, counter, s))
        counter += 1
    settled = set()
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for v, w in graph.neighbor_items(u):
            if weight_override is not None:
                key = (u, v) if repr(u) <= repr(v) else (v, u)
                w = weight_override.get(key, w)
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, counter, v))
                counter += 1
    return dist, parent


def dijkstra_path(
    graph: WeightedGraph, source: Vertex, target: Vertex
) -> Tuple[float, List[Vertex]]:
    """Distance and one shortest path from ``source`` to ``target``.

    Raises
    ------
    ValueError
        If ``target`` is unreachable from ``source``.
    """
    dist, parent = dijkstra(graph, source)
    if target not in dist:
        raise ValueError(f"{target!r} unreachable from {source!r}")
    path = [target]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])
    path.reverse()
    return dist[target], path


def bounded_dijkstra(
    graph: WeightedGraph, source: Vertex, radius: float
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Optional[Vertex]]]:
    """Dijkstra restricted to the ball ``B_G(source, radius)``.

    Only vertices at distance ``<= radius`` appear in the output.  This is
    the sequential analogue of the Δ-bounded explorations of §7.
    """
    dist: Dict[Vertex, float] = {source: 0.0}
    parent: Dict[Vertex, Optional[Vertex]] = {source: None}
    heap: List[Tuple[float, int, Vertex]] = [(0.0, 0, source)]
    counter = 1
    settled = set()
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for v, w in graph.neighbor_items(u):
            nd = d + w
            if nd <= radius and nd < dist.get(v, INF):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, counter, v))
                counter += 1
    return dist, parent


def all_pairs_shortest_paths(graph: WeightedGraph) -> Dict[Vertex, Dict[Vertex, float]]:
    """All-pairs distances by repeated Dijkstra (fine for test-sized graphs)."""
    return {v: dijkstra(graph, v)[0] for v in graph.vertices()}


def path_weight(graph: WeightedGraph, path: List[Vertex]) -> float:
    """Total weight of a vertex path; validates that each hop is an edge."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        total += graph.weight(u, v)
    return total


def eccentricity(graph: WeightedGraph, v: Vertex) -> float:
    """Weighted eccentricity of ``v`` (max distance to any vertex)."""
    dist, _ = dijkstra(graph, v)
    if len(dist) != graph.n:
        return INF
    return max(dist.values())


def hop_distances(graph: WeightedGraph, source: Vertex) -> Dict[Vertex, int]:
    """Unweighted (hop) distances from ``source`` via BFS."""
    dist = {source: 0}
    frontier = [source]
    while frontier:
        nxt = []
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    nxt.append(v)
        frontier = nxt
    return dist


def hop_diameter(graph: WeightedGraph) -> int:
    """The paper's ``D``: diameter of the underlying unweighted graph.

    Computed exactly by BFS from every vertex; intended for the moderate
    graph sizes used in tests and benchmarks.

    Raises
    ------
    ValueError
        If the graph is disconnected (hop diameter undefined).
    """
    if graph.n == 0:
        return 0
    best = 0
    for v in graph.vertices():
        dist = hop_distances(graph, v)
        if len(dist) != graph.n:
            raise ValueError("hop diameter undefined: graph is disconnected")
        best = max(best, max(dist.values()))
    return best


def weak_diameter(graph: WeightedGraph, cluster: Iterable[Vertex]) -> float:
    """Weak diameter of a cluster: max d_G(u, v) over u, v in the cluster (§2)."""
    cluster = list(cluster)
    best = 0.0
    for v in cluster:
        dist, _ = dijkstra(graph, v)
        for u in cluster:
            if u not in dist:
                return INF
            best = max(best, dist[u])
    return best


def strong_diameter(graph: WeightedGraph, cluster: Iterable[Vertex]) -> float:
    """Strong diameter: max distance inside the induced subgraph ``G[C]`` (§2)."""
    sub = graph.subgraph(cluster)
    best = 0.0
    for v in sub.vertices():
        dist, _ = dijkstra(sub, v)
        if len(dist) != sub.n:
            return INF
        best = max(best, max(dist.values()))
    return best
