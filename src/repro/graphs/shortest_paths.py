"""Sequential shortest-path routines (ground truth for the simulator).

These are the *centralized* references the test-suite and the analysis
package use to validate the distributed constructions: exact Dijkstra,
distance-bounded Dijkstra (needed by the §7 doubling spanner, which runs
2Δ-bounded explorations), hop-ignoring BFS (the paper's hop-diameter ``D``),
and small-graph all-pairs distances.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.graphs.csr import CSRGraph
from repro.graphs.weighted_graph import Vertex, WeightedGraph, canonical_edge

INF = float("inf")

#: Read-only graph views every traversal here accepts.
GraphLike = Union[WeightedGraph, CSRGraph]


def _normalize_sources(
    graph: GraphLike, sources: Iterable[Vertex] | Vertex
) -> List[Vertex]:
    """Resolve the ``sources`` argument into a non-empty vertex list.

    A single vertex becomes a one-element list.  Two historically silent
    misuses are rejected loudly instead:

    * an *empty* iterable (the traversal would return empty dicts that
      look like "nothing is reachable");
    * a string that is not itself a vertex (iterating it would treat
      each character as a source).

    Raises
    ------
    ValueError
        On an empty source set or a non-vertex string/bytes source.
    """
    try:
        if graph.has_vertex(sources):  # single-vertex call
            return [sources]
    except TypeError:
        pass  # unhashable => definitely an iterable of sources
    if isinstance(sources, (str, bytes)):
        raise ValueError(
            f"source {sources!r} is not a vertex (a non-vertex string would "
            f"be iterated character by character)"
        )
    out = list(sources)
    if not out:
        raise ValueError("at least one source vertex is required")
    return out


def _csr_dijkstra(
    csr: CSRGraph, sources: Iterable[Vertex] | Vertex
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Optional[Vertex]]]:
    """Array-indexed Dijkstra over a CSR graph.

    The inner loop touches only dense int indices — distance/parent are
    flat lists and heap entries are ``(float, int)`` pairs, so no vertex
    hashing or tie-break counter is needed.  Results are converted back
    to label-keyed dicts to match the public contract.
    """
    sources = _normalize_sources(csr, sources)
    n = csr.n
    indptr, indices, weights, verts = csr.indptr, csr.indices, csr.weights, csr.verts
    dist: List[float] = [INF] * n
    parent: List[int] = [-2] * n  # -2 = untouched, -1 = source
    heap: List[Tuple[float, int]] = []
    for s in sources:
        i = csr.index_of(s)
        dist[i] = 0.0
        parent[i] = -1
        heap.append((0.0, i))
    heapq.heapify(heap)
    push, pop = heapq.heappush, heapq.heappop
    while heap:
        d, u = pop(heap)
        if d > dist[u]:
            continue  # stale entry
        a, b = indptr[u], indptr[u + 1]
        for v, w in zip(indices[a:b], weights[a:b]):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                push(heap, (nd, v))
    out_dist: Dict[Vertex, float] = {}
    out_parent: Dict[Vertex, Optional[Vertex]] = {}
    for i in range(n):
        p = parent[i]
        if p == -2:
            continue
        out_dist[verts[i]] = dist[i]
        out_parent[verts[i]] = None if p == -1 else verts[p]
    return out_dist, out_parent


def dijkstra(
    graph: GraphLike,
    sources: Iterable[Vertex] | Vertex,
    weight_override: Optional[Dict[Tuple[Vertex, Vertex], float]] = None,
    kernel: str = "python",
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Optional[Vertex]]]:
    """Multi-source Dijkstra.

    Parameters
    ----------
    graph:
        The weighted graph — either a :class:`WeightedGraph` or a frozen
        :class:`CSRGraph` (the latter takes the indexed fast path).
    sources:
        A single vertex or an iterable of source vertices (all at
        distance 0).
    weight_override:
        Optional map from canonical edges to replacement weights.  A
        falsy override (``None`` *or* an empty dict) overrides nothing,
        so both take the indexed CSR fast path.
    kernel:
        SSSP backend: ``"python"`` (default), ``"numpy"``, or ``"auto"``
        — resolved by :mod:`repro.kernels`.  Distances agree to 1e-9
        across backends; parent choices may differ on equal-length ties
        (both are witness shortest paths).  Ignored with a
        ``weight_override`` (the dict path has no CSR to hand a kernel).

    Returns
    -------
    (dist, parent):
        ``dist[v]`` is the distance from the nearest source (vertices
        unreachable from every source are absent); ``parent[v]`` is the
        predecessor on a shortest path (``None`` for sources).

    Raises
    ------
    ValueError
        On an empty source set or a non-vertex string source.
    """
    if not weight_override:
        # a full SSSP is Ω(m) anyway, so freezing (cached on the graph,
        # invalidated by mutation) costs at most one extra edge sweep and
        # every later call on the same graph rides the indexed fast path
        if isinstance(graph, WeightedGraph):
            graph = graph.freeze()
        if kernel != "python":
            return _kernel_dijkstra(graph, sources, kernel)
        return _csr_dijkstra(graph, sources)
    return _dict_dijkstra(graph, sources, weight_override)


def _kernel_dijkstra(
    csr: CSRGraph, sources: Iterable[Vertex] | Vertex, kernel: str
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Optional[Vertex]]]:
    """:func:`_csr_dijkstra` through the :mod:`repro.kernels` dispatch.

    The kernels layer works on raw CSR columns and dense indices; this
    wrapper owns the label translation on both sides, so the public
    dict-shaped contract is identical for every backend.
    """
    from repro.kernels import sssp as kernel_sssp

    sources = _normalize_sources(csr, sources)
    dist, parent = kernel_sssp(
        csr.indptr, csr.indices, csr.weights,
        [csr.index_of(s) for s in sources], kernel=kernel,
    )
    verts = csr.verts
    out_dist: Dict[Vertex, float] = {}
    out_parent: Dict[Vertex, Optional[Vertex]] = {}
    for i in range(csr.n):
        p = parent[i]
        if p == -2:
            continue
        out_dist[verts[i]] = dist[i]
        out_parent[verts[i]] = None if p == -1 else verts[p]
    return out_dist, out_parent


def _dict_dijkstra(
    graph: GraphLike,
    sources: Iterable[Vertex] | Vertex,
    weight_override: Optional[Dict[Tuple[Vertex, Vertex], float]] = None,
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Optional[Vertex]]]:
    """Label-keyed Dijkstra over the adjacency-map API.

    The general path: handles ``weight_override`` and any graph exposing
    ``neighbor_items``.  Kept separate so benchmarks can compare it
    against the CSR fast path directly.
    """
    sources = _normalize_sources(graph, sources)
    dist: Dict[Vertex, float] = {}
    parent: Dict[Vertex, Optional[Vertex]] = {}
    heap: List[Tuple[float, int, Vertex]] = []
    counter = 0
    for s in sources:
        dist[s] = 0.0
        parent[s] = None
        heapq.heappush(heap, (0.0, counter, s))
        counter += 1
    settled = set()
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for v, w in graph.neighbor_items(u):
            if weight_override is not None:
                w = weight_override.get(canonical_edge(u, v), w)
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, counter, v))
                counter += 1
    return dist, parent


def dijkstra_path(
    graph: WeightedGraph, source: Vertex, target: Vertex
) -> Tuple[float, List[Vertex]]:
    """Distance and one shortest path from ``source`` to ``target``.

    Raises
    ------
    ValueError
        If ``target`` is unreachable from ``source``.
    """
    dist, parent = dijkstra(graph, source)
    if target not in dist:
        raise ValueError(f"{target!r} unreachable from {source!r}")
    path = [target]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])
    path.reverse()
    return dist[target], path


def bounded_dijkstra(
    graph: GraphLike, sources: Iterable[Vertex] | Vertex, radius: float
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Optional[Vertex]]]:
    """Dijkstra restricted to the ball ``B_G(sources, radius)``.

    Only vertices at distance ``<= radius`` from the nearest source
    appear in the output.  This is the sequential analogue of the
    Δ-bounded explorations of §7; out-of-radius labels are never pushed,
    so the heap holds the ball and nothing else.  (The bounded-radius
    certification engine in :mod:`repro.analysis.certify` is the batched,
    target-tracking sibling of this primitive.)

    Like :func:`dijkstra`, ``sources`` may be a single vertex or an
    iterable of vertices (all at distance 0).  A :class:`WeightedGraph`
    input is frozen to its cached CSR view first — a bounded exploration
    is exactly the repeated-call pattern the cache exists for.

    Raises
    ------
    ValueError
        On an empty source set or a non-vertex string source.
    """
    if isinstance(graph, WeightedGraph):
        graph = graph.freeze()
    return _csr_bounded_dijkstra(graph, sources, radius)


def _csr_bounded_dijkstra(
    csr: CSRGraph, sources: Iterable[Vertex] | Vertex, radius: float
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Optional[Vertex]]]:
    """Indexed multi-source variant of :func:`bounded_dijkstra`."""
    sources = _normalize_sources(csr, sources)
    n = csr.n
    indptr, indices, weights, verts = csr.indptr, csr.indices, csr.weights, csr.verts
    dist: List[float] = [INF] * n
    parent: List[int] = [-2] * n
    heap: List[Tuple[float, int]] = []
    for s in sources:
        i = csr.index_of(s)
        dist[i] = 0.0
        parent[i] = -1
        heap.append((0.0, i))
    heapq.heapify(heap)
    push, pop = heapq.heappush, heapq.heappop
    while heap:
        d, u = pop(heap)
        if d > dist[u]:
            continue
        a, b = indptr[u], indptr[u + 1]
        for v, w in zip(indices[a:b], weights[a:b]):
            nd = d + w
            if nd <= radius and nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                push(heap, (nd, v))
    out_dist: Dict[Vertex, float] = {}
    out_parent: Dict[Vertex, Optional[Vertex]] = {}
    for i in range(n):
        p = parent[i]
        if p == -2:
            continue
        out_dist[verts[i]] = dist[i]
        out_parent[verts[i]] = None if p == -1 else verts[p]
    return out_dist, out_parent


def all_pairs_shortest_paths(graph: GraphLike) -> Dict[Vertex, Dict[Vertex, float]]:
    """All-pairs distances by repeated Dijkstra (fine for test-sized graphs).

    A :class:`WeightedGraph` input is frozen once so all ``n`` runs share
    the CSR fast path.
    """
    csr = graph.freeze() if isinstance(graph, WeightedGraph) else graph
    return {v: dijkstra(csr, v)[0] for v in csr.vertices()}


def path_weight(graph: WeightedGraph, path: List[Vertex]) -> float:
    """Total weight of a vertex path; validates that each hop is an edge."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        total += graph.weight(u, v)
    return total


def eccentricity(graph: GraphLike, v: Vertex) -> float:
    """Weighted eccentricity of ``v`` (max distance to any vertex)."""
    dist, _ = dijkstra(graph, v)
    if len(dist) != graph.n:
        return INF
    return max(dist.values())


def hop_distances(graph: GraphLike, source: Vertex) -> Dict[Vertex, int]:
    """Unweighted (hop) distances from ``source`` via BFS."""
    if isinstance(graph, CSRGraph):
        verts = graph.verts
        return {
            verts[i]: d for i, d in _csr_hop_distances(graph, graph.index_of(source))
        }
    dist = {source: 0}
    frontier = [source]
    while frontier:
        nxt = []
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    nxt.append(v)
        frontier = nxt
    return dist


def _csr_hop_distances(csr: CSRGraph, src: int) -> List[Tuple[int, int]]:
    """BFS over CSR arrays; returns ``(vertex index, hop distance)`` pairs
    in visit order (a flat int-array frontier — no per-vertex hashing)."""
    indptr, indices = csr.indptr, csr.indices
    dist = [-1] * csr.n
    dist[src] = 0
    order = [(src, 0)]
    frontier = [src]
    d = 0
    while frontier:
        d += 1
        nxt = []
        for u in frontier:
            for v in indices[indptr[u]:indptr[u + 1]]:
                if dist[v] < 0:
                    dist[v] = d
                    order.append((v, d))
                    nxt.append(v)
        frontier = nxt
    return order


def hop_diameter(graph: GraphLike) -> int:
    """The paper's ``D``: diameter of the underlying unweighted graph.

    Computed exactly by BFS from every vertex (the graph is frozen to its
    CSR view once and all ``n`` traversals run over the index arrays,
    reusing one mark array across sources); intended for the moderate
    graph sizes used in tests and benchmarks.

    Raises
    ------
    ValueError
        If the graph is disconnected (hop diameter undefined).
    """
    if graph.n == 0:
        return 0
    csr = graph.freeze() if isinstance(graph, WeightedGraph) else graph
    n = csr.n
    indptr, indices = csr.indptr, csr.indices
    mark = [-1] * n  # mark[v] == src iff v was reached in src's BFS
    best = 0
    for src in range(n):
        mark[src] = src
        frontier = [src]
        reached = 1
        depth = 0
        while frontier:
            nxt = []
            for u in frontier:
                for v in indices[indptr[u]:indptr[u + 1]]:
                    if mark[v] != src:
                        mark[v] = src
                        nxt.append(v)
            if nxt:
                depth += 1
                reached += len(nxt)
            frontier = nxt
        if reached != n:
            raise ValueError("hop diameter undefined: graph is disconnected")
        best = max(best, depth)
    return best


def weak_diameter(graph: GraphLike, cluster: Iterable[Vertex]) -> float:
    """Weak diameter of a cluster: max d_G(u, v) over u, v in the cluster (§2)."""
    cluster = list(cluster)
    csr = graph.freeze() if isinstance(graph, WeightedGraph) else graph
    best = 0.0
    for v in cluster:
        dist, _ = dijkstra(csr, v)
        for u in cluster:
            if u not in dist:
                return INF
            best = max(best, dist[u])
    return best


def strong_diameter(graph: GraphLike, cluster: Iterable[Vertex]) -> float:
    """Strong diameter: max distance inside the induced subgraph ``G[C]`` (§2)."""
    if isinstance(graph, CSRGraph):
        graph = graph.to_weighted()
    sub = graph.subgraph(cluster).freeze()
    best = 0.0
    for v in sub.vertices():
        dist, _ = dijkstra(sub, v)
        if len(dist) != sub.n:
            return INF
        best = max(best, max(dist.values()))
    return best
