"""Core weighted undirected graph used throughout the reproduction.

The paper works with weighted undirected graphs ``G = (V, E, w)`` where the
minimum edge weight is 1 and the maximum is poly(n) (Preliminaries, §2).
:class:`WeightedGraph` is a thin adjacency-map structure with exactly the
operations the algorithms need: neighbour iteration, edge weights, subgraph
extraction, union, and weight aggregation.  It deliberately stores each
undirected edge once in a canonical ``(min(u, v), max(u, v))`` form so that
edge sets coming from different algorithms compare cleanly.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

if TYPE_CHECKING:
    from repro.graphs.csr import CSRGraph

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


#: Types whose ``<=`` is a genuine total order.  The fast path is
#: restricted to exactly these: containers can embed partially-ordered
#: members (a tuple of frozensets compares by subset order without
#: raising), which would make ``vertex_le(u, v)`` and ``vertex_le(v, u)``
#: both False and silently break edge canonicalisation.
_TOTAL_ORDER_TYPES = (int, str, bytes)


def vertex_le(u: Vertex, v: Vertex) -> bool:
    """Total order on vertices: ``u`` precedes (or equals) ``v``.

    Fast path: same-type int/str/bytes (and non-NaN float) vertices
    compare directly — for the ubiquitous int vertices a single C-level
    comparison instead of the two ``repr()`` string builds the old
    implementation paid on every edge visit.  Everything else falls back
    to a ``(type name, repr)`` key, which is total and deterministic.
    """
    tu, tv = type(u), type(v)
    if tu is tv:
        if tu in _TOTAL_ORDER_TYPES:
            return u <= v
        if tu is float and u == u and v == v:  # NaN breaks totality
            return u <= v
    return (tu.__name__, repr(u)) <= (tv.__name__, repr(v))


def canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical (sorted) form of the undirected edge ``{u, v}``."""
    return (u, v) if vertex_le(u, v) else (v, u)


class WeightedGraph:
    """An undirected graph with positive edge weights.

    Parameters
    ----------
    vertices:
        Optional iterable of initial vertices (edges add endpoints
        automatically).

    Notes
    -----
    Vertices may be any hashable object; the generators in this package use
    integers ``0..n-1``.  Weights must be positive; the paper assumes
    weights in ``[1, poly(n)]`` but the data structure does not enforce an
    upper bound.
    """

    __slots__ = ("_adj", "_csr_cache")

    def __init__(self, vertices: Optional[Iterable[Vertex]] = None) -> None:
        self._adj: Dict[Vertex, Dict[Vertex, float]] = {}
        self._csr_cache = None
        if vertices is not None:
            for v in vertices:
                self.add_vertex(v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        """Add an isolated vertex (no-op if already present)."""
        if v not in self._adj:
            self._adj[v] = {}
            self._csr_cache = None

    def add_edge(self, u: Vertex, v: Vertex, weight: float) -> None:
        """Add (or overwrite) the undirected edge ``{u, v}`` with ``weight``.

        Raises
        ------
        ValueError
            If ``u == v`` (self-loop) or ``weight <= 0``.
        """
        if u == v:
            raise ValueError(f"self-loops are not allowed: {u!r}")
        if weight <= 0:
            raise ValueError(f"edge weights must be positive, got {weight!r}")
        self._adj.setdefault(u, {})[v] = float(weight)
        self._adj.setdefault(v, {})[u] = float(weight)
        self._csr_cache = None

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the undirected edge ``{u, v}``.

        Raises
        ------
        KeyError
            If the edge is not present.
        """
        del self._adj[u][v]
        del self._adj[v][u]
        self._csr_cache = None

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and all incident edges."""
        for u in list(self._adj[v]):
            del self._adj[u][v]
        del self._adj[v]
        self._csr_cache = None

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def m(self) -> int:
        """Number of (undirected) edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[Tuple[Vertex, Vertex, float]]:
        """Iterate over each undirected edge once, as ``(u, v, weight)``.

        Each edge is stored in both endpoint rows; yielding only the
        canonically-ordered direction visits every edge exactly once
        without the O(m) seen-set the old implementation materialised.
        """
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if vertex_le(u, v):
                    yield u, v, w

    def edge_set(self) -> Set[Edge]:
        """Return the set of canonical edges (without weights)."""
        return {canonical_edge(u, v) for u, v, _ in self.edges()}

    def neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate over the neighbours of ``v``."""
        return iter(self._adj[v])

    def neighbor_items(self, v: Vertex) -> Iterator[Tuple[Vertex, float]]:
        """Iterate over ``(neighbour, weight)`` pairs of ``v``."""
        return iter(self._adj[v].items())

    def degree(self, v: Vertex) -> int:
        """Number of neighbours of ``v``."""
        return len(self._adj[v])

    def has_vertex(self, v: Vertex) -> bool:
        """True iff ``v`` is a vertex of the graph."""
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """True iff ``{u, v}`` is an edge of the graph."""
        return u in self._adj and v in self._adj[u]

    def weight(self, u: Vertex, v: Vertex) -> float:
        """Weight of the edge ``{u, v}``.

        Raises
        ------
        KeyError
            If the edge is not present.
        """
        return self._adj[u][v]

    def total_weight(self) -> float:
        """Sum of all edge weights, ``w(G)``."""
        return sum(w for _, _, w in self.edges())

    def min_weight(self) -> float:
        """Minimum edge weight (``inf`` on an edgeless graph)."""
        return min((w for _, _, w in self.edges()), default=float("inf"))

    def max_weight(self) -> float:
        """Maximum edge weight (0 on an edgeless graph)."""
        return max((w for _, _, w in self.edges()), default=0.0)

    def aspect_ratio(self) -> float:
        """Ratio of maximum to minimum edge weight (Λ in the paper)."""
        lo = self.min_weight()
        if lo == float("inf"):
            return 1.0
        return self.max_weight() / lo

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "WeightedGraph":
        """Deep copy of the graph."""
        g = WeightedGraph()
        for v in self._adj:
            g.add_vertex(v)
        for u, v, w in self.edges():
            g.add_edge(u, v, w)
        return g

    def subgraph(self, vertices: Iterable[Vertex]) -> "WeightedGraph":
        """Vertex-induced subgraph ``G[C]`` (used for strong diameters, §2)."""
        keep = set(vertices)
        g = WeightedGraph(keep)
        for u, v, w in self.edges():
            if u in keep and v in keep:
                g.add_edge(u, v, w)
        return g

    def edge_subgraph(
        self, edges: Iterable[Edge], include_all_vertices: bool = True
    ) -> "WeightedGraph":
        """Subgraph on a given set of edges (weights taken from ``self``).

        Parameters
        ----------
        edges:
            Iterable of vertex pairs; each must be an edge of ``self``.
        include_all_vertices:
            When True (default) the result spans all of ``self``'s
            vertices — the natural setting for spanners, which must span V.
        """
        g = WeightedGraph(self._adj if include_all_vertices else None)
        for u, v in edges:
            g.add_edge(u, v, self.weight(u, v))
        return g

    def union(self, other: "WeightedGraph") -> "WeightedGraph":
        """Union of two graphs; on conflicting weights, keep the smaller."""
        g = self.copy()
        for v in other.vertices():
            g.add_vertex(v)
        for u, v, w in other.edges():
            if not g.has_edge(u, v) or g.weight(u, v) > w:
                g.add_edge(u, v, w)
        return g

    def reweighted(
        self, fn: Callable[[Vertex, Vertex, float], float]
    ) -> "WeightedGraph":
        """Return a copy with each edge ``(u, v, w)`` reweighted to ``fn(u, v, w)``."""
        g = WeightedGraph(self._adj)
        for u, v, w in self.edges():
            g.add_edge(u, v, fn(u, v, w))
        return g

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def connected_component(self, source: Vertex) -> Set[Vertex]:
        """Set of vertices reachable from ``source``."""
        seen = {source}
        stack = [source]
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen

    def is_connected(self) -> bool:
        """True iff the graph is connected (empty graph counts as connected)."""
        if self.n == 0:
            return True
        source = next(iter(self._adj))
        return len(self.connected_component(source)) == self.n

    def connected_components(self) -> List[Set[Vertex]]:
        """All connected components, as vertex sets.

        Components are listed in vertex-insertion order (the order of
        each component's first-inserted vertex), not set-hash order.
        """
        remaining = set(self._adj)
        components: List[Set[Vertex]] = []
        for v in self._adj:
            if v in remaining:
                comp = self.connected_component(v)
                components.append(comp)
                remaining -= comp
        return components

    def is_tree(self) -> bool:
        """True iff the graph is connected and acyclic."""
        return self.n > 0 and self.m == self.n - 1 and self.is_connected()

    # ------------------------------------------------------------------
    # CSR fast-path bridge
    # ------------------------------------------------------------------
    def to_csr(self) -> "CSRGraph":
        """Flatten into a fresh read-only :class:`~repro.graphs.csr.CSRGraph`."""
        from repro.graphs.csr import CSRGraph

        return CSRGraph.from_weighted(self)

    def freeze(self) -> "CSRGraph":
        """Cached :class:`~repro.graphs.csr.CSRGraph` view of this graph.

        The CSR view is built on first call and reused until the next
        mutation (``add_vertex``/``add_edge``/``remove_*`` invalidate it),
        so algorithms that run many traversals over a stable graph —
        all-pairs distances, stretch certification, per-net-point
        explorations — pay the O(n + m) flatten exactly once.
        """
        if self._csr_cache is None:
            self._csr_cache = self.to_csr()
        return self._csr_cache

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self) -> Any:
        """Convert to a ``networkx.Graph`` (weights under key ``'weight'``)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self._adj)
        g.add_weighted_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, nxg: Any, weight_key: str = "weight") -> "WeightedGraph":
        """Build from a ``networkx`` graph; missing weights default to 1."""
        g = cls(nxg.nodes())
        for u, v, data in nxg.edges(data=True):
            g.add_edge(u, v, data.get(weight_key, 1.0))
        return g

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:
        return f"WeightedGraph(n={self.n}, m={self.m}, w={self.total_weight():.4g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedGraph):
            return NotImplemented
        if set(self._adj) != set(other._adj):
            return False
        mine = {canonical_edge(u, v): w for u, v, w in self.edges()}
        theirs = {canonical_edge(u, v): w for u, v, w in other.edges()}
        return mine == theirs

    def __hash__(self) -> int:  # graphs are mutable
        raise TypeError("WeightedGraph is unhashable (mutable)")
