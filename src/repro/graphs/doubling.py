"""Doubling-dimension utilities (Definitions of §1.3 and Lemma 6).

A graph has doubling dimension ``ddim`` if every ball ``B(v, 2r)`` can be
covered by ``2^ddim`` balls of radius ``r``.  The §7 spanner's lightness and
sparsity bounds are parameterized by ``ddim`` through the packing property
(Lemma 6): a ``r``-separated set inside a radius-``R`` ball has at most
``(2R/r)^{O(ddim)}`` points.

These routines compute empirical estimates used by the test-suite (to check
the generators really produce low-ddim graphs) and by the benchmarks (to
report the measured packing constants next to the paper's bounds).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Set

from repro.graphs.shortest_paths import all_pairs_shortest_paths, dijkstra
from repro.graphs.weighted_graph import Vertex, WeightedGraph


def ball(graph: WeightedGraph, center: Vertex, radius: float) -> Set[Vertex]:
    """``B_G(v, r) = {u : d_G(u, v) <= r}`` (footnote 3 of the paper)."""
    dist, _ = dijkstra(graph, center)
    return {u for u, d in dist.items() if d <= radius}


def greedy_net_of_set(
    dist_from: Dict[Vertex, Dict[Vertex, float]], points: Iterable[Vertex], r: float
) -> List[Vertex]:
    """Greedy ``r``-net of ``points`` given a (partial) distance oracle.

    Sequential greedy: scan points, keep those farther than ``r`` from all
    kept points.  This is the inherently-sequential baseline the paper's §6
    distributed net construction replaces.
    """
    net: List[Vertex] = []
    for p in points:
        if all(dist_from[q].get(p, math.inf) > r for q in net):
            net.append(p)
    return net


def packing_number(graph: WeightedGraph, center: Vertex, radius: float, separation: float) -> int:
    """Max size of a ``separation``-separated subset of ``B(center, radius)``.

    Computed greedily (a 2-approximation of the true packing number, and an
    exact witness of Lemma 6's *shape*: the count must be bounded by
    ``(2*radius/separation)^{O(ddim)}``).
    """
    members = sorted(ball(graph, center, radius), key=repr)
    dist_from = {v: dijkstra(graph, v)[0] for v in members}
    return len(greedy_net_of_set(dist_from, members, separation))


def doubling_dimension_estimate(graph: WeightedGraph, samples: int = 8) -> float:
    """Empirical doubling-dimension estimate.

    For a sample of centers and radii, count the greedy number of
    radius-``r`` balls needed to cover ``B(v, 2r)`` (upper-bounded by a
    greedy ``r``-net of the ball) and return ``log2`` of the worst count.
    Exact on small graphs; an estimate (not a certificate) in general.
    """
    if graph.n <= 1:
        return 0.0
    apsp = all_pairs_shortest_paths(graph)
    vertices = sorted(graph.vertices(), key=repr)
    step = max(1, len(vertices) // samples)
    centers = vertices[::step][:samples]
    diameter = max(max(d.values()) for d in apsp.values())
    worst = 1
    r = max(1.0, diameter / 64)
    while r <= diameter:
        for c in centers:
            members = [u for u, d in apsp[c].items() if d <= 2 * r]
            net = greedy_net_of_set(apsp, members, r)
            worst = max(worst, len(net))
        r *= 2
    return math.log2(worst)
